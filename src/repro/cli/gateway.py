"""``repro-jobs``: submit, track, and cancel jobs on a gateway server.

The client side of the multi-tenant job gateway
(:mod:`repro.core.gateway`): a scientist submits a DSEARCH or DPRml
problem under their tenant id, gets a job id back (or an explicit
retry-after when their admission queue is full), and polls or cancels
it by id.  The server must run ``repro-server --tenants FILE``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any

from repro.rmi import connect


def _parse_address(parser: argparse.ArgumentParser, text: str) -> tuple[str, int]:
    host, _, port_text = text.partition(":")
    if not port_text:
        parser.error("server must be host:port")
    try:
        return host, int(port_text)
    except ValueError:
        parser.error(f"bad port {port_text!r}")


def _build_dsearch(args: argparse.Namespace):
    from repro.apps.dsearch import DSearchConfig, build_problem
    from repro.bio.seq import DNA, read_fasta

    config = (
        DSearchConfig.from_path(args.config) if args.config else DSearchConfig()
    )
    database = read_fasta(args.database, DNA)
    queries = read_fasta(args.queries, DNA)
    return build_problem(database, queries, config)


def _build_dprml(args: argparse.Namespace):
    from repro.apps.dprml import DPRmlConfig, build_problem
    from repro.bio.phylo.alignment import SiteAlignment
    from repro.bio.seq import DNA, read_fasta

    config = DPRmlConfig.from_path(args.config) if args.config else DPRmlConfig()
    sequences = read_fasta(args.alignment, DNA)
    return build_problem(SiteAlignment.from_sequences(sequences), config)


def jobs_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-jobs",
        description="Submit and manage jobs on a multi-tenant task-farm "
        "server (repro-server --tenants FILE).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="submit a job under a tenant")
    submit.add_argument("server", help="server address as host:port")
    submit.add_argument("--tenant", required=True, help="tenant id")
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its outcome",
    )
    kind = submit.add_subparsers(dest="kind", required=True)
    ds = kind.add_parser("dsearch", help="distributed database search")
    ds.add_argument("database", type=Path, help="FASTA database file")
    ds.add_argument("queries", type=Path, help="FASTA query sequences file")
    ds.add_argument("--config", type=Path, help="configuration file")
    dp = kind.add_parser("dprml", help="distributed ML phylogeny")
    dp.add_argument("alignment", type=Path, help="aligned FASTA (DNA)")
    dp.add_argument("--config", type=Path, help="configuration file")

    status = sub.add_parser("status", help="show one job's lifecycle state")
    status.add_argument("server", help="server address as host:port")
    status.add_argument("job_id", type=int)

    cancel = sub.add_parser("cancel", help="cancel a queued or running job")
    cancel.add_argument("server", help="server address as host:port")
    cancel.add_argument("job_id", type=int)

    tenants = sub.add_parser("tenants", help="per-tenant gateway accounting")
    tenants.add_argument("server", help="server address as host:port")
    tenants.add_argument(
        "--json", action="store_true", help="dump the raw snapshot as JSON"
    )

    args = parser.parse_args(argv)
    host, port = _parse_address(parser, args.server)
    proxy = connect(host, port, "taskfarm")
    try:
        return _dispatch(args, proxy)
    finally:
        proxy.close()


def _dispatch(args: argparse.Namespace, proxy: Any) -> int:
    if args.command == "submit":
        problem = (
            _build_dsearch(args) if args.kind == "dsearch" else _build_dprml(args)
        )
        reply = proxy.submit_job(args.tenant, problem)
        if "error" in reply:
            print(f"repro-jobs: {reply['error']}", file=sys.stderr)
            return 1
        if not reply.get("accepted"):
            print(
                f"repro-jobs: rejected: {reply['reason']}", file=sys.stderr
            )
            print(f"retry after {reply['retry_after']:g}s", file=sys.stderr)
            return 2
        job_id = reply["job_id"]
        print(f"job {job_id} submitted (tenant {args.tenant})")
        if args.wait:
            return _wait(proxy, job_id)
        return 0
    if args.command == "status":
        reply = proxy.job_status(args.job_id)
        if "error" in reply:
            print(f"repro-jobs: {reply['error']}", file=sys.stderr)
            return 1
        _print_status(reply)
        return 0
    if args.command == "cancel":
        reply = proxy.cancel_job(args.job_id)
        if "error" in reply:
            print(f"repro-jobs: {reply['error']}", file=sys.stderr)
            return 1
        if reply["cancelled"]:
            print(f"job {args.job_id} cancelled")
            return 0
        print(f"job {args.job_id} had already finished")
        return 1
    if args.command == "tenants":
        snap = proxy.gateway_snapshot()
        if "error" in snap:
            print(f"repro-jobs: {snap['error']}", file=sys.stderr)
            return 1
        if args.json:
            json.dump(snap, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
            return 0
        jobs = snap["jobs"]
        print(
            f"jobs: {jobs['queued']} queued, {jobs['running']} running, "
            f"{jobs['done']} done, {jobs['failed']} failed, "
            f"{jobs['cancelled']} cancelled"
        )
        print(
            f"{'tenant':<14} {'weight':>6} {'run':>4} {'pend':>5} "
            f"{'items':>10} {'done':>5} {'rejected':>9}"
        )
        for t in snap["tenants"]:
            print(
                f"{t['tenant']:<14.14} {t['weight']:>6.1f} {t['running']:>4} "
                f"{t['pending']:>5} {t['items_delivered']:>10,.0f} "
                f"{t['jobs_done']:>5} {t['rejected']:>9}"
            )
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


def _print_status(info: dict) -> None:
    print(f"job {info['job_id']}: {info['status']} (tenant {info['tenant']})")
    if info.get("progress") is not None:
        print(f"  progress: {info['progress']:.1%}")
    if info.get("failure"):
        print(f"  failure: {info['failure']}")


def _wait(proxy: Any, job_id: int, poll: float = 2.0) -> int:
    while True:
        info = proxy.job_status(job_id)
        if "error" in info:
            print(f"repro-jobs: {info['error']}", file=sys.stderr)
            return 1
        if info["status"] in ("done", "failed", "cancelled"):
            _print_status(info)
            return 0 if info["status"] == "done" else 1
        time.sleep(poll)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(jobs_main())
