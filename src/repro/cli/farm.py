"""``repro-server`` and ``repro-donor``: the deployment commands."""

from __future__ import annotations

import argparse
import signal
import sys
import time
from pathlib import Path

from repro.cluster.local import ServerFacade, make_blob_fetch
from repro.core.client import DonorClient
from repro.core.integrity import IntegrityPolicy
from repro.core.scheduler import AdaptiveGranularity
from repro.core.server import PipelineConfig, TaskFarmServer
from repro.rmi import RMIServer
from repro.rmi.datachannel import DataChannelServer
from repro.rmi.reconnect import ReconnectingPort


def server_main(argv: list[str] | None = None) -> int:
    """Host a task-farm server on a TCP port until interrupted."""
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Host the task-farm server (donors connect with repro-donor).",
    )
    parser.add_argument("--host", default="0.0.0.0", help="bind address")
    parser.add_argument("--port", type=int, default=9317, help="TCP port")
    parser.add_argument(
        "--lease-timeout", type=float, default=300.0,
        help="seconds before an unanswered unit is reissued",
    )
    parser.add_argument(
        "--unit-target-seconds", type=float, default=60.0,
        help="adaptive granularity target per unit",
    )
    parser.add_argument(
        "--status-interval", type=float, default=0.0, metavar="SECONDS",
        help="print a live status table every SECONDS "
             "(0 disables; repro-status can also pull it remotely)",
    )
    durability = parser.add_argument_group(
        "durability",
        "write-ahead journal + periodic checkpoints: a kill -9'd "
        "server restarted with the same --journal DIR recovers to the "
        "exact state it died with",
    )
    durability.add_argument(
        "--journal", type=Path, default=None, metavar="DIR",
        help="journal every state mutation into DIR (fsync per record) "
             "and auto-recover from it on startup",
    )
    durability.add_argument(
        "--checkpoint-interval", type=float, default=60.0, metavar="SECONDS",
        help="with --journal: seconds between checkpoints that compact "
             "the journal (0 disables compaction; recovery then "
             "replays from genesis)",
    )
    integrity = parser.add_argument_group(
        "result integrity",
        "defend against byzantine (lying) donors by issuing units to "
        "several independent donors and comparing result digests",
    )
    integrity.add_argument(
        "--replication", type=int, default=1, metavar="K",
        help="issue every unit to K independent donors (1 disables)",
    )
    integrity.add_argument(
        "--quorum", type=int, default=2, metavar="N",
        help="matching digests needed to accept a replicated unit",
    )
    integrity.add_argument(
        "--spot-check-rate", type=float, default=0.0, metavar="RATE",
        help="fraction of units double-issued at random even when "
             "--replication is 1",
    )
    integrity.add_argument(
        "--quarantine-after", type=float, default=3.0, metavar="SUSPICION",
        help="suspicion score at which a donor stops receiving work",
    )
    pipe = parser.add_argument_group(
        "pipelined runtime",
        "overlap donor communication with computation: multi-lease "
        "depth for prefetching donors, speculative tail re-issue",
    )
    pipe.add_argument(
        "--lease-depth", type=int, default=0, metavar="DEPTH",
        help="max units leased to one donor at once "
             "(0 = unlimited, the historical behaviour; prefetching "
             "donors want 2)",
    )
    pipe.add_argument(
        "--tail-reissue", action="store_true",
        help="speculatively duplicate straggler units near problem end "
             "onto idle donors (exactly-once folding drops the loser)",
    )
    pipe.add_argument(
        "--tail-window", type=int, default=4, metavar="K",
        help="re-issue only when at most K units remain in flight",
    )
    gw = parser.add_argument_group(
        "job gateway",
        "multi-tenant front door: weighted fair-share dispatch, "
        "bounded admission queues, and a durable job lifecycle "
        "(submit jobs with repro-jobs)",
    )
    gw.add_argument(
        "--tenants", type=Path, default=None, metavar="FILE",
        help="tenant config file (tenant.<id>.weight = N etc.); "
             "enables the job gateway",
    )
    args = parser.parse_args(argv)

    try:
        policy = IntegrityPolicy(
            replication=args.replication,
            quorum=args.quorum,
            spot_check_rate=args.spot_check_rate,
            quarantine_after=args.quarantine_after,
            blacklist_after=max(args.quarantine_after, 10.0),
        )
    except ValueError as exc:
        parser.error(str(exc))
    try:
        pipeline = PipelineConfig(
            lease_depth=args.lease_depth if args.lease_depth > 0 else None,
            tail_reissue=args.tail_reissue,
            tail_window=args.tail_window,
        )
    except ValueError as exc:
        parser.error(str(exc))

    server = TaskFarmServer(
        policy=AdaptiveGranularity(target_seconds=args.unit_target_seconds),
        lease_timeout=args.lease_timeout,
        integrity=policy,
        pipeline=pipeline,
    )
    gateway = None
    tenant_configs = []
    if args.tenants is not None:
        from repro.core.gateway import JobGateway, parse_tenants
        from repro.util.config import ConfigError, ConfigFile

        try:
            tenant_configs = parse_tenants(ConfigFile.from_path(args.tenants))
        except (ConfigError, OSError) as exc:
            parser.error(f"--tenants: {exc}")
        if not tenant_configs:
            parser.error(f"--tenants: no tenant.* keys in {args.tenants}")
        # Created before recovery so journaled gateway records have a
        # gateway to replay into; tenant definitions from the file are
        # upserted afterwards (the file wins over journaled configs).
        gateway = JobGateway(server)
    checkpoint_path = None
    if args.journal is not None:
        from repro.core.journal import DirStore, recover

        store = DirStore(args.journal)
        checkpoint_path = args.journal / "checkpoint.tfck"
        checkpoint = (
            checkpoint_path.read_bytes() if checkpoint_path.exists() else None
        )
        report = recover(
            server, store, checkpoint=checkpoint, now=time.monotonic(),
            gateway=gateway,
        )
        if report.restored_problems or report.replayed:
            print(
                f"recovered {len(report.restored_problems)} checkpointed "
                f"problem(s) + {report.replayed} journal record(s)"
                + (
                    f"; torn tail truncated ({report.torn_bytes} bytes)"
                    if report.torn_bytes
                    else ""
                ),
                flush=True,
            )
    if gateway is not None:
        now = time.monotonic()
        for config in tenant_configs:
            gateway.ensure_tenant(config, now)
        print(
            f"job gateway on: tenants {', '.join(gateway.tenant_ids())}",
            flush=True,
        )
    # Shared payload blobs go out over the bulk data channel; donors
    # learn its address via the facade and cache blobs by digest.
    data_channel = DataChannelServer(host=args.host, meters=server.obs.meters)
    facade = ServerFacade(server, data_channel=data_channel, gateway=gateway)
    # Reclaim leases even when every donor has vanished.
    facade.start_lease_sweeper()
    # Share the farm's meter registry so RMI dispatch telemetry lands in
    # the same snapshot repro-status reads.
    rmi = RMIServer(host=args.host, port=args.port, obs=server.obs)
    rmi.bind("taskfarm", facade)
    print(f"task-farm server listening on {rmi.host}:{rmi.port}", flush=True)
    print(
        f"data channel on {data_channel.host}:{data_channel.port}", flush=True
    )

    stop = {"flag": False}

    def handle_signal(_sig, _frame):
        stop["flag"] = True

    signal.signal(signal.SIGINT, handle_signal)
    signal.signal(signal.SIGTERM, handle_signal)
    next_status = (
        time.monotonic() + args.status_interval if args.status_interval > 0 else None
    )
    next_checkpoint = (
        time.monotonic() + args.checkpoint_interval
        if checkpoint_path is not None and args.checkpoint_interval > 0
        else None
    )
    try:
        while not stop["flag"]:
            time.sleep(0.5)
            if next_status is not None and time.monotonic() >= next_status:
                print(facade.status_report(), flush=True)
                next_status = time.monotonic() + args.status_interval
            if next_checkpoint is not None and time.monotonic() >= next_checkpoint:
                facade.checkpoint_to(checkpoint_path)
                next_checkpoint = time.monotonic() + args.checkpoint_interval
    finally:
        facade.stop_lease_sweeper()
        rmi.close()
        data_channel.close()
        print("server stopped", flush=True)
    return 0


def donor_main(argv: list[str] | None = None) -> int:
    """Run one donor loop against a remote server."""
    parser = argparse.ArgumentParser(
        prog="repro-donor",
        description="Donate this machine's spare cycles to a task-farm server.",
    )
    parser.add_argument("server", help="server address as host:port")
    parser.add_argument(
        "--name", default=None, help="donor id (default: hostname-pid)"
    )
    parser.add_argument(
        "--idle-sleep", type=float, default=2.0,
        help="seconds to wait when the server has no work",
    )
    parser.add_argument(
        "--max-units", type=int, default=None, help="stop after N units"
    )
    parser.add_argument(
        "--prefetch", action="store_true",
        help="pipelined mode: fetch unit N+1 in the background while "
             "unit N computes (the server should run --lease-depth 2)",
    )
    parser.add_argument(
        "--workers", default="1", metavar="N|auto",
        help="compute N leased units concurrently on a pool of worker "
             "processes ('auto' = one per CPU core); the donor "
             "advertises the count so the server scales lease depth "
             "and unit sizing to it",
    )
    args = parser.parse_args(argv)

    if args.workers == "auto":
        import os as _os

        workers = _os.cpu_count() or 1
    else:
        try:
            workers = int(args.workers)
        except ValueError:
            parser.error(f"--workers must be an integer or 'auto', got {args.workers!r}")
        if workers < 1:
            parser.error("--workers must be >= 1")

    host, _, port_text = args.server.partition(":")
    if not port_text:
        parser.error("server must be host:port")
    try:
        port = int(port_text)
    except ValueError:
        parser.error(f"bad port {port_text!r}")

    if args.name:
        donor_id = args.name
    else:
        import os
        import socket as socketlib

        donor_id = f"{socketlib.gethostname()}-{os.getpid()}"

    # Donors outlive server restarts: on a connection-level failure the
    # port redials with jittered backoff and re-registers this donor
    # before retrying the call, so a recovered server knows us again.
    proxy = ReconnectingPort(
        host,
        port,
        "taskfarm",
        # A journaled server may be down for minutes while an operator
        # restarts it; a volunteer donor should outwait that, not give
        # up after the default ~20s of backoff.
        max_attempts=60,
        on_reconnect=lambda p: p.register_donor(donor_id, workers),
    )
    try:
        client = DonorClient(
            donor_id,
            proxy,
            idle_sleep=args.idle_sleep,
            blob_fetch=make_blob_fetch(proxy),
            prefetch=args.prefetch,
            workers=workers,
        )
        print(
            f"donor {donor_id} connected to {host}:{port}"
            + (f" ({workers} workers)" if workers > 1 else ""),
            flush=True,
        )
        units = client.run(max_units=args.max_units)
        print(f"donor {donor_id} done after {units} units", flush=True)
    finally:
        proxy.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(server_main())
