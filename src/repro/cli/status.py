"""``repro-status``: live progress of a running farm.

Connects to a running ``repro-server`` (or any
:class:`~repro.cluster.local.ServerFacade` exported over RMI) and
renders a point-in-time progress table: per-problem % complete,
per-donor utilization and calibrated items/s, and streaming meter
summaries.  ``--json`` dumps the raw snapshot for scripts and the
benchmarks; ``--from-json`` renders a previously dumped snapshot (e.g.
one written by a simulation), so live and simulated runs share one
rendering path.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any

from repro.rmi import connect

#: Counters worth a line in the human-readable meter summary, in order.
_KEY_COUNTERS = (
    "farm.units.issued",
    "farm.units.completed",
    "farm.units.requeued",
    "farm.units.failed",
    "farm.units.duplicate",
    "farm.items.completed",
    "farm.bytes.in",
    "farm.bytes.out",
    "farm.leases.expired",
    "farm.problems.cancelled",
    "farm.gateway.jobs.submitted",
    "farm.gateway.jobs.started",
    "farm.gateway.jobs.done",
    "farm.gateway.jobs.failed",
    "farm.gateway.jobs.cancelled",
    "farm.gateway.jobs.rejected",
    "farm.journal.records",
    "farm.journal.bytes",
    "farm.journal.fsyncs",
    "farm.journal.torn.truncated",
    "farm.recovery.replayed",
    "farm.recovery.seconds",
    "farm.integrity.redundant_units",
    "farm.integrity.redundant_items",
    "farm.integrity.spot_checks",
    "farm.integrity.agreements",
    "farm.integrity.disagreements",
    "farm.integrity.untrusted",
    "farm.integrity.quarantines",
    "farm.align.cells.effective",
    "farm.align.cells.padded",
    "farm.align.buckets.batched",
    "farm.align.pairs.scalar",
    "farm.align.batch.fallbacks",
    "farm.cache.hits",
    "farm.cache.misses",
    "farm.cache.evictions",
    "farm.cache.refetches",
    "farm.cache.bypass",
    "farm.cache.fetch.bytes",
    "farm.pipeline.prefetch.hits",
    "farm.pipeline.prefetch.misses",
    "farm.pipeline.idle.gap.seconds",
    "farm.pipeline.idle.polls",
    "farm.pipeline.depth.refusals",
    "farm.pipeline.tail.reissues",
    "farm.pipeline.wasted.items",
    "farm.pool.workers",
    "farm.pool.units",
    "farm.pool.busy.seconds",
    "farm.pool.slot.seconds",
    "farm.pool.queue.wait.seconds",
    "farm.pool.carry.bytes",
    "farm.pool.failures",
    "net.blob.refs",
    "net.blob.deliveries",
    "net.blob.bytes",
    "net.blob.bytes.saved",
    "net.blob.published",
    "net.blob.fetches",
    "net.blob.fetch.bytes",
    "rmi.calls",
    "net.bytes",
)


def _fmt_quantity(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.2f}"


def _ratio_line(label: str, numerator: float, denominator: float) -> str:
    """One derived-rate line, safe against a zero denominator.

    Snapshots can legitimately carry counters at zero (a donor that
    registered but never fetched, a pool that never dispatched), so
    every derived rate shares this guard instead of dividing inline.
    """
    if denominator:
        return f"  {label:<24} {numerator / denominator:.1%}"
    return f"  {label:<24} -"


def _histogram_line(name: str, summary: dict[str, Any]) -> str:
    count = summary["count"]
    if not count:
        return f"  {name:<24} (empty)"
    # Bucket-resolution quantiles from the cumulative counts.
    bounds, counts = summary["bounds"], summary["counts"]

    def quantile(q: float) -> float:
        rank = q * count
        seen = 0
        for i, c in enumerate(counts):
            seen += c
            if seen >= rank and c:
                return min(bounds[i], summary["max"]) if i < len(bounds) else summary["max"]
        return summary["max"]

    return (
        f"  {name:<24} n={count:<8} mean={summary['mean']:<10.4g} "
        f"p50≤{quantile(0.5):<10.4g} p90≤{quantile(0.9):<10.4g} "
        f"max={summary['max']:.4g}"
    )


def render_snapshot(snap: dict[str, Any]) -> str:
    """Render a ``status_json``/``status_snapshot`` dict as a table."""
    problems = snap.get("problems", [])
    donors = snap.get("donors", [])
    running = sum(1 for p in problems if p["status"] == "running")
    busy = sum(1 for d in donors if d["active"])
    lines = [
        f"task farm status @ t={snap.get('time', 0.0):.1f}: "
        f"{running} running problem(s), {len(donors)} donor(s) ({busy} busy)",
        "",
        f"{'id':>4} {'problem':<18} {'status':<9} {'progress':>9} "
        f"{'done':>6} {'flight':>7} {'requeued':>9}",
    ]
    for p in problems:
        lines.append(
            f"{p['problem_id']:>4} {p['name']:<18.18} {p['status']:<9} "
            f"{p['progress']:>8.1%} {p['units_completed']:>6} "
            f"{p['units_in_flight']:>7} {p['units_requeued']:>9}"
        )
    lines.append("")
    lines.append(
        f"{'donor':<18} {'slots':>5} {'units':>6} {'items':>8} "
        f"{'busy(s)':>9} {'items/s':>8} {'util':>6} {'state':<10}"
    )
    for d in donors:
        state = "busy" if d["active"] else f"idle {d['idle_seconds']:.0f}s"
        rate = f"{d['items_per_second']:.2f}" if d["items_per_second"] else "-"
        lines.append(
            f"{d['donor_id']:<18.18} {d.get('slots', 1):>5} "
            f"{d['units_completed']:>6} "
            f"{d['items_completed']:>8} {d['busy_seconds']:>9.1f} "
            f"{rate:>8} {d['utilization']:>6.0%} {state:<10}"
        )
    meters = snap.get("meters", {})
    counters = meters.get("counters", {})
    shown = [n for n in _KEY_COUNTERS if counters.get(n)]
    if shown:
        lines.append("")
        lines.append("meters")
        for name in shown:
            lines.append(f"  {name:<24} {_fmt_quantity(counters[name])}")
            if name == "farm.align.cells.padded":
                # How much of the batched engine's padded DP tensor was
                # real alignment work (the rest was bucket padding).
                lines.append(
                    _ratio_line(
                        "farm.align.pad.efficiency",
                        counters.get("farm.align.cells.effective", 0.0),
                        counters[name],
                    )
                )
            elif name == "farm.journal.records":
                # Fraction of journal appends lost to torn tails; a
                # non-dash value here means a crash landed mid-write
                # and recovery truncated the damage loudly.
                lines.append(
                    _ratio_line(
                        "farm.journal.torn.rate",
                        counters.get("farm.journal.torn.truncated", 0.0),
                        counters[name],
                    )
                )
            elif name == "farm.pipeline.prefetch.misses":
                # Fraction of unit fetches fully hidden under compute.
                hits = counters.get("farm.pipeline.prefetch.hits", 0.0)
                lines.append(
                    _ratio_line(
                        "farm.pipeline.prefetch.hit.rate",
                        hits,
                        hits + counters[name],
                    )
                )
            elif name == "farm.pool.busy.seconds":
                # Fraction of pooled slot-time spent computing units.
                lines.append(
                    _ratio_line(
                        "farm.pool.utilization",
                        counters[name],
                        counters.get("farm.pool.slot.seconds", 0.0),
                    )
                )
    histograms = meters.get("histograms", {})
    interesting = [n for n in sorted(histograms) if histograms[n]["count"]]
    if interesting:
        lines.append("")
        lines.append("histograms")
        for name in interesting:
            lines.append(_histogram_line(name, histograms[name]))
    integrity = snap.get("integrity")
    if integrity:
        policy = integrity.get("policy", {})
        lines.append("")
        lines.append(
            f"integrity: replication={policy.get('replication', 1)} "
            f"quorum={policy.get('quorum', 2)} "
            f"spot-check={policy.get('spot_check_rate', 0.0):.0%}"
        )
        quarantined = set(integrity.get("quarantined", []))
        reputations = integrity.get("reputations", {})
        if reputations:
            lines.append(
                f"  {'donor':<18} {'agree':>6} {'disagree':>9} "
                f"{'expired':>8} {'failed':>7} {'state':<12}"
            )
            for donor_id, rep in sorted(reputations.items()):
                lines.append(
                    f"  {donor_id:<18.18} {rep['agreements']:>6} "
                    f"{rep['disagreements']:>9} {rep['expiries']:>8} "
                    f"{rep['failures']:>7} {rep['state']:<12}"
                )
        if quarantined:
            lines.append(
                "  quarantined: " + ", ".join(sorted(quarantined))
            )
    gateway = snap.get("gateway")
    if gateway:
        jobs = gateway.get("jobs", {})
        lines.append("")
        lines.append(
            "gateway: "
            f"{jobs.get('queued', 0)} queued, {jobs.get('running', 0)} running, "
            f"{jobs.get('done', 0)} done, {jobs.get('failed', 0)} failed, "
            f"{jobs.get('cancelled', 0)} cancelled job(s)"
        )
        tenants = gateway.get("tenants", [])
        if tenants:
            lines.append(
                f"  {'tenant':<14} {'weight':>6} {'run':>4} {'pend':>5} "
                f"{'items':>9} {'done':>5} {'rej':>4} {'wait-avg':>9} {'wait-max':>9}"
            )
            total_weight = sum(t["weight"] for t in tenants)
            total_items = gateway.get("items_delivered_total", 0.0)
            for t in tenants:
                if t["queue_wait_count"]:
                    avg = f"{t['queue_wait_total'] / t['queue_wait_count']:.1f}s"
                else:
                    avg = "-"
                lines.append(
                    f"  {t['tenant']:<14.14} {t['weight']:>6.1f} "
                    f"{t['running']:>4} {t['pending']:>5} "
                    f"{_fmt_quantity(t['items_delivered']):>9} "
                    f"{t['jobs_done']:>5} {t['rejected']:>4} "
                    f"{avg:>9} {t['queue_wait_max']:>8.1f}s"
                )
            for t in tenants:
                # Delivered share vs the weight target — same
                # zero-denominator guard as every derived rate.
                target = t["weight"] / total_weight if total_weight else 0.0
                lines.append(
                    _ratio_line(
                        f"share {t['tenant']} (target {target:.0%})",
                        t["items_delivered"],
                        total_items,
                    )
                )
    traces = snap.get("traces")
    if traces:
        lines.append("")
        lines.append(
            f"traces: {traces['open_spans']} open span(s), "
            f"{traces['finished_spans']} finished (ring-buffered)"
        )
    return "\n".join(lines)


def fetch_snapshot(host: str, port: int, timeout: float = 5.0) -> dict[str, Any]:
    """Pull one status snapshot from a live server over RMI."""
    proxy = connect(host, port, "taskfarm", timeout=timeout)
    try:
        return proxy.status_json()
    finally:
        proxy.close()


def status_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-status",
        description="Show live progress of a running task-farm server.",
    )
    parser.add_argument(
        "server", nargs="?", default=None, help="server address as host:port"
    )
    parser.add_argument(
        "--from-json", type=Path, default=None, metavar="PATH",
        help="render a snapshot previously dumped with --json "
             "(e.g. from a simulated run) instead of contacting a server",
    )
    parser.add_argument(
        "--json", action="store_true", help="dump the raw snapshot as JSON"
    )
    parser.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="refresh every SECONDS until interrupted",
    )
    args = parser.parse_args(argv)

    if (args.server is None) == (args.from_json is None):
        parser.error("need exactly one of: a server address, or --from-json")
    if args.from_json is not None and args.watch is not None:
        parser.error("--watch needs a live server")

    if args.from_json is not None:
        try:
            snap = json.loads(args.from_json.read_text())
        except OSError as exc:
            print(f"repro-status: cannot read {args.from_json}: {exc}", file=sys.stderr)
            return 1
        except json.JSONDecodeError as exc:
            print(f"repro-status: {args.from_json} is not valid JSON: {exc}",
                  file=sys.stderr)
            return 1
        _emit(snap, args.json)
        return 0

    host, _, port_text = args.server.partition(":")
    if not port_text:
        parser.error("server must be host:port")
    try:
        port = int(port_text)
    except ValueError:
        parser.error(f"bad port {port_text!r}")

    while True:
        try:
            snap = fetch_snapshot(host, port)
        except OSError as exc:
            print(f"repro-status: cannot reach {host}:{port}: {exc}", file=sys.stderr)
            return 1
        _emit(snap, args.json)
        if args.watch is None:
            return 0
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0
        print()


def _emit(snap: dict[str, Any], as_json: bool) -> None:
    try:
        if as_json:
            json.dump(snap, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            print(render_snapshot(snap))
    except BrokenPipeError:
        # Reader (head, less, ...) went away: exit quietly, and point
        # stdout at devnull so the interpreter's final flush stays silent.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0) from None


if __name__ == "__main__":  # pragma: no cover
    sys.exit(status_main())
