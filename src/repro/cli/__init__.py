"""Command-line entry points.

The deployment story of the paper: a server runs somewhere on the
network, lab PCs run the donor client "as a low priority background
service", and users submit problems.  These commands are that story:

* ``repro-server`` — host a task-farm server on a TCP port.
* ``repro-donor``  — run a donor against a server (the lab-PC side).
* ``repro-status`` — show live progress of a running server.
* ``repro-dsearch`` — run a DSEARCH job on a local cluster.
* ``repro-dprml``  — run DPRml on a local cluster.
* ``repro-dboot``  — run a distributed bootstrap on a local cluster.
"""
