"""``repro-dsearch``, ``repro-dprml``, ``repro-dboot``: job commands.

Each reads the paper's input files (FASTA + a ``key = value``
configuration file), runs the job on a local thread cluster, and
writes plain-text results.  They are thin shells over the library —
everything they do is available programmatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.apps.dboot import run_dboot
from repro.apps.dprml import DPRmlConfig, run_dprml, run_many_dprml
from repro.apps.dsearch import DSearchConfig, run_dsearch
from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.seq import DNA, read_fasta


def dsearch_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dsearch",
        description="Sensitive distributed database search (DSEARCH).",
    )
    parser.add_argument("database", type=Path, help="FASTA database file")
    parser.add_argument("queries", type=Path, help="FASTA query sequences file")
    parser.add_argument("--config", type=Path, help="configuration file")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--output", type=Path, default=None, help="write hits as TSV (default stdout)"
    )
    args = parser.parse_args(argv)

    config = DSearchConfig.from_path(args.config) if args.config else DSearchConfig()
    database = read_fasta(args.database, DNA)
    queries = read_fasta(args.queries, DNA)
    report = run_dsearch(database, queries, config, workers=args.workers)

    lines = ["query\trank\tsubject\tscore\tsubject_length"]
    for query_id in report.queries:
        for rank, hit in enumerate(report.hits[query_id], start=1):
            lines.append(
                f"{query_id}\t{rank}\t{hit.subject_id}\t{hit.score:.1f}\t"
                f"{hit.subject_length}"
            )
    text = "\n".join(lines) + "\n"
    if args.output:
        args.output.write_text(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def dprml_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dprml",
        description="Distributed phylogeny reconstruction by maximum likelihood.",
    )
    parser.add_argument("alignment", type=Path, help="aligned FASTA (DNA)")
    parser.add_argument("--config", type=Path, help="configuration file")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--instances", type=int, default=1,
        help="simultaneous stochastic instances (keep the best tree)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="write best tree as Newick"
    )
    args = parser.parse_args(argv)

    config = DPRmlConfig.from_path(args.config) if args.config else DPRmlConfig()
    sequences = read_fasta(args.alignment, DNA)
    alignment = SiteAlignment.from_sequences(sequences)

    if args.instances > 1:
        reports = run_many_dprml(
            alignment, instances=args.instances, config=config, workers=args.workers
        )
        best = max(reports, key=lambda r: r.log_likelihood)
        for i, rep in enumerate(reports):
            marker = " (best)" if rep is best else ""
            print(f"instance {i}: logL = {rep.log_likelihood:.2f}{marker}")
    else:
        best = run_dprml(alignment, config, workers=args.workers)
        print(f"logL = {best.log_likelihood:.2f}")

    if args.output:
        args.output.write_text(best.newick + "\n")
        print(f"wrote {args.output}")
    else:
        print(best.newick)
    from repro.bio.phylo.draw import ascii_tree
    from repro.bio.phylo.tree import parse_newick as _parse

    print()
    print(ascii_tree(_parse(best.newick), width=64))
    return 0


def dboot_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dboot",
        description="Distributed bootstrap support values.",
    )
    parser.add_argument("alignment", type=Path, help="aligned FASTA (DNA)")
    parser.add_argument("--replicates", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    sequences = read_fasta(args.alignment, DNA)
    alignment = SiteAlignment.from_sequences(sequences)
    report = run_dboot(
        alignment, replicates=args.replicates, seed=args.seed, workers=args.workers
    )
    print(f"reference tree: {report.reference_newick}")
    print(f"{'support':>8}  split")
    for entry in report.supports:
        members = ",".join(sorted(entry.split))
        print(f"{entry.support:>7.0%}  {{{members}}}")
    return 0
