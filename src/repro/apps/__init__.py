"""The paper's two applications, built on the task-farming framework."""
