"""The distributed bootstrap: DataManager + Algorithm + drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.bootstrap import (
    SupportedSplit,
    bootstrap_alignment,
    nj_replicate_tree,
    split_support,
)
from repro.bio.phylo.tree import Tree, parse_newick
from repro.core.problem import Algorithm, DataManager, Problem
from repro.core.workunit import UnitPayload, WorkResult
from repro.util.rng import spawn_rng


@dataclass(slots=True)
class BootstrapReport:
    """Reference tree with per-split bootstrap support."""

    reference_newick: str
    supports: list[SupportedSplit]
    replicates: int

    def support_for(self, names: frozenset[str]) -> float:
        for entry in self.supports:
            if entry.split == names:
                return entry.support
        raise KeyError(f"no reference split {sorted(names)}")

    def strongly_supported(self, threshold: float = 0.7) -> list[SupportedSplit]:
        return [s for s in self.supports if s.support >= threshold]


class BootstrapAlgorithm(Algorithm):
    """Donor side: build replicate trees for a batch of seeds.

    Returns each replicate's split set (frozensets of leaf names) —
    compact, and all the server needs for vote counting.
    """

    def __init__(self, alignment: SiteAlignment, base_seed: int):
        self.alignment = alignment
        self.base_seed = base_seed

    def compute(self, payload: Any) -> list[set[frozenset[str]]]:
        replicate_ids = payload
        out = []
        for replicate_id in replicate_ids:
            rng = spawn_rng(self.base_seed, "dboot", replicate_id)
            replicate = bootstrap_alignment(self.alignment, rng)
            out.append(nj_replicate_tree(replicate).splits())
        return out

    def cost(self, payload: Any) -> float:
        # NJ is O(taxa^3) + distances O(taxa^2 * patterns).
        n = self.alignment.n_taxa
        per_replicate = n**3 + n**2 * self.alignment.n_patterns
        return len(payload) * per_replicate / 1e6


class BootstrapDataManager(DataManager):
    """Server side: deal out replicate ids, count split votes."""

    def __init__(
        self,
        alignment: SiteAlignment,
        replicates: int = 100,
        seed: int = 0,
        reference: Tree | None = None,
    ):
        if replicates < 1:
            raise ValueError("need at least one replicate")
        if alignment.n_taxa < 4:
            raise ValueError("bootstrap support needs at least four taxa")
        self.alignment = alignment
        self.replicates = replicates
        self.seed = seed
        self.reference = reference or nj_replicate_tree(alignment)
        self._next = 0
        self._splits: list[set[frozenset[str]]] = []

    def total_items(self) -> int:
        return self.replicates

    def next_unit(self, max_items: int) -> UnitPayload | None:
        if self._next >= self.replicates:
            return None
        take = min(max_items, self.replicates - self._next)
        ids = tuple(range(self._next, self._next + take))
        self._next += take
        return UnitPayload(payload=ids, items=take, input_bytes=8 * take)

    def handle_result(self, result: WorkResult) -> None:
        self._splits.extend(result.value)

    def is_complete(self) -> bool:
        return len(self._splits) >= self.replicates

    def final_result(self) -> BootstrapReport:
        return BootstrapReport(
            reference_newick=self.reference.newick(),
            supports=split_support(self.reference, self._splits),
            replicates=len(self._splits),
        )

    def progress(self) -> float:
        return len(self._splits) / self.replicates


def build_problem(
    alignment: SiteAlignment,
    replicates: int = 100,
    seed: int = 0,
    reference: Tree | None = None,
    name: str = "dboot",
) -> Problem:
    """Assemble a distributed bootstrap Problem."""
    return Problem(
        name=name,
        data_manager=BootstrapDataManager(alignment, replicates, seed, reference),
        algorithm=BootstrapAlgorithm(alignment, seed),
    )


def run_dboot(
    alignment: SiteAlignment,
    replicates: int = 100,
    seed: int = 0,
    workers: int = 4,
) -> BootstrapReport:
    """Run a whole bootstrap on a local thread cluster."""
    from repro.cluster.local import ThreadCluster
    from repro.core.scheduler import AdaptiveGranularity

    cluster = ThreadCluster(
        workers=workers,
        policy=AdaptiveGranularity(target_seconds=0.5, probe_items=1),
    )
    pid = cluster.submit(build_problem(alignment, replicates, seed))
    cluster.run()
    return cluster.final_result(pid)
