"""DBOOT: distributed bootstrap support — a third application.

The paper closes with "we will be creating more distributed
bioinformatics applications"; the nonparametric bootstrap is the
obvious next one (biologists bootstrap every published tree) and it
exercises the framework's embarrassingly parallel path with a
result-assembly step (vote counting) that is order-independent.
"""

from repro.apps.dboot.app import (
    BootstrapAlgorithm,
    BootstrapDataManager,
    BootstrapReport,
    build_problem,
    run_dboot,
)

__all__ = [
    "BootstrapAlgorithm",
    "BootstrapDataManager",
    "BootstrapReport",
    "build_problem",
    "run_dboot",
]
