"""DPRml end-to-end drivers: single runs and the paper's multi-instance
usage pattern."""

from __future__ import annotations

from dataclasses import replace

from repro.apps.dprml.algorithm import DPRmlAlgorithm
from repro.apps.dprml.config import DPRmlConfig
from repro.apps.dprml.datamanager import DPRmlDataManager, DPRmlReport
from repro.bio.phylo.alignment import SiteAlignment
from repro.core.problem import Problem


def build_problem(
    alignment: SiteAlignment,
    config: DPRmlConfig | None = None,
    name: str = "dprml",
) -> Problem:
    """Assemble one self-contained DPRml Problem."""
    config = config or DPRmlConfig()
    return Problem(
        name=name,
        data_manager=DPRmlDataManager(alignment, config),
        algorithm=DPRmlAlgorithm(config, alignment),
    )


def run_dprml(
    alignment: SiteAlignment,
    config: DPRmlConfig | None = None,
    workers: int = 4,
) -> DPRmlReport:
    """Run one DPRml instance on a local thread cluster."""
    from repro.cluster.local import ThreadCluster
    from repro.core.scheduler import AdaptiveGranularity

    config = config or DPRmlConfig()
    cluster = ThreadCluster(
        workers=workers,
        policy=AdaptiveGranularity(
            target_seconds=config.unit_target_seconds, probe_items=1
        ),
    )
    pid = cluster.submit(build_problem(alignment, config))
    cluster.run()
    return cluster.final_result(pid)


def run_many_dprml(
    alignment: SiteAlignment,
    instances: int = 6,
    config: DPRmlConfig | None = None,
    workers: int = 4,
) -> list[DPRmlReport]:
    """The paper's Fig. 2 usage: several stochastic instances at once.

    Each instance gets a different randomised addition order (a
    different ``order_seed``); running them simultaneously keeps donors
    busy across each instance's stage barriers.  Returns the reports in
    instance order — callers typically keep the best log-likelihood.
    """
    from repro.cluster.local import ThreadCluster
    from repro.core.scheduler import AdaptiveGranularity

    if instances < 1:
        raise ValueError("need at least one instance")
    config = config or DPRmlConfig()
    cluster = ThreadCluster(
        workers=workers,
        policy=AdaptiveGranularity(
            target_seconds=config.unit_target_seconds, probe_items=1
        ),
    )
    pids = []
    for i in range(instances):
        instance_config = replace(config, order_seed=config.order_seed + i + 1)
        pids.append(
            cluster.submit(
                build_problem(alignment, instance_config, name=f"dprml-{i}")
            )
        )
    cluster.run()
    return [cluster.final_result(pid) for pid in pids]


def consensus_of(reports: list[DPRmlReport], threshold: float = 0.5):
    """Majority-rule consensus of several instances' trees.

    Returns ``(tree, splits)`` — see
    :func:`repro.bio.phylo.consensus.majority_consensus`.  This is how
    biologists summarise a set of stochastic runs when no single tree
    dominates on likelihood.
    """
    from repro.bio.phylo.consensus import majority_consensus
    from repro.bio.phylo.tree import parse_newick

    if not reports:
        raise ValueError("need at least one report")
    trees = [parse_newick(r.newick) for r in reports]
    return majority_consensus(trees, threshold=threshold)
