"""The DPRml server-side DataManager: the staged stepwise search.

A small state machine with a full barrier between stages:

``INIT``
    One "polish" unit settles the 3-taxon starting tree's branch
    lengths donor-side.
``PLACING``
    Stage *i* creates one task per edge of the current tree (``2i−5``
    of them), hands them out in adaptively sized batches, and only when
    every batch is back applies the winning placement and opens stage
    *i+1* — the barrier the paper describes.
``FINAL``
    One last "polish" unit re-optimises all branch lengths.

The DataManager never computes a likelihood itself — all numeric work
runs on donors, exactly as in the paper's server.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.apps.dprml.config import DPRmlConfig
from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.distances import nj_addition_order
from repro.bio.phylo.stepwise import PlacementScore, apply_placement
from repro.bio.phylo.tree import Tree, parse_newick
from repro.core.blobs import payload_nbytes
from repro.core.problem import DataManager
from repro.core.workunit import UnitPayload, WorkResult
from repro.util.rng import spawn_rng


@dataclass(slots=True)
class DPRmlReport:
    """The assembled answer of one DPRml run."""

    newick: str
    log_likelihood: float
    addition_order: list[str]
    stage_winners: list[PlacementScore] = field(default_factory=list)
    evaluations: int = 0


class _State(enum.Enum):
    INIT = "init"
    PLACING = "placing"
    FINAL = "final"
    DONE = "done"


class DPRmlDataManager(DataManager):
    """Drives the staged search; see module docstring."""

    def __init__(self, alignment: SiteAlignment, config: DPRmlConfig | None = None):
        if alignment.n_taxa < 4:
            raise ValueError("DPRml needs at least four taxa")
        self.config = config or DPRmlConfig()
        self.alignment = alignment
        base_order = nj_addition_order(alignment)
        if self.config.order_seed:
            # Stochastic runs: biologists launch several instances with
            # different (randomised) addition orders.
            rng = spawn_rng(self.config.order_seed, "dprml-order")
            perm = rng.permutation(len(base_order))
            base_order = [base_order[i] for i in perm]
        self.order = list(base_order)
        self.tree = Tree.star(self.order[:3], branch_length=self.config.leaf_branch)

        self._state = _State.INIT
        self._unit_out = False          # INIT/FINAL: polish unit in flight
        self._stage = 0                 # index of the taxon being placed
        self._pending: list[int] = []   # edge indices not yet issued
        self._outstanding = 0           # placements issued, awaiting results
        self._stage_newick = ""
        self._stage_ref = None
        self._best: PlacementScore | None = None
        self._winners: list[PlacementScore] = []
        self._evaluations = 0
        self._final: DPRmlReport | None = None
        self._items_done = 0
        n = alignment.n_taxa
        self._total_items = 2 + sum(2 * i - 5 for i in range(4, n + 1))

    # -- stage machinery -------------------------------------------------

    def _taxon_for_stage(self) -> str:
        return self.order[3 + self._stage]

    def _open_stage(self) -> None:
        self._stage_newick = self.tree.newick()
        # Every batch of a stage evaluates placements on the *same*
        # tree; sharing it ships each stage's newick to a donor once
        # and batches carry only a reference.  (INIT/FINAL polish units
        # stay inline: one unit per tree, nothing to share.)
        self._stage_ref = (
            self.share(self._stage_newick)
            if self.config.share_payloads
            else None
        )
        self._pending = list(range(len(self.tree.edges())))
        self._outstanding = 0
        self._best = None

    def _advance_after_stage(self) -> None:
        assert self._best is not None
        apply_placement(
            self.tree,
            self._taxon_for_stage(),
            self._best,
            leaf_branch=self.config.leaf_branch,
        )
        self._winners.append(self._best)
        self._stage += 1
        if 3 + self._stage < len(self.order):
            self._open_stage()
        else:
            self._state = _State.FINAL

    # -- DataManager interface ----------------------------------------------

    def total_items(self) -> int:
        return self._total_items

    def next_unit(self, max_items: int) -> UnitPayload | None:
        if self._state is _State.INIT:
            if self._unit_out:
                return None
            self._unit_out = True
            newick = self.tree.newick()
            return UnitPayload(
                payload=("polish", newick, 1), items=1, input_bytes=len(newick) + 64
            )
        if self._state is _State.PLACING:
            if not self._pending:
                return None  # barrier: wait for this stage's results
            take = min(max_items, len(self._pending))
            batch = tuple(self._pending[:take])
            del self._pending[:take]
            self._outstanding += take
            tree_part = (
                self._stage_ref if self._stage_ref is not None else self._stage_newick
            )
            payload = ("place", tree_part, self._taxon_for_stage(), batch)
            return UnitPayload(
                payload=payload,
                items=take,
                input_bytes=payload_nbytes(payload),
            )
        if self._state is _State.FINAL:
            if self._unit_out:
                return None
            self._unit_out = True
            newick = self.tree.newick()
            return UnitPayload(
                payload=("polish", newick, 2), items=1, input_bytes=len(newick) + 64
            )
        return None

    def handle_result(self, result: WorkResult) -> None:
        kind, value = result.value
        if kind == "place":
            if self._state is not _State.PLACING:
                raise RuntimeError("placement result outside a placing stage")
            for score in value:
                self._evaluations += 1
                if score.better_than(self._best):
                    self._best = score
            self._outstanding -= len(value)
            self._items_done += len(value)
            if not self._pending and self._outstanding == 0:
                self._advance_after_stage()
        elif kind == "polish":
            newick, loglik = value
            self._items_done += 1
            self._unit_out = False
            if self._state is _State.INIT:
                self.tree = parse_newick(newick)
                self._state = _State.PLACING
                self._open_stage()
            elif self._state is _State.FINAL:
                self._state = _State.DONE
                self._final = DPRmlReport(
                    newick=newick,
                    log_likelihood=loglik,
                    addition_order=list(self.order),
                    stage_winners=list(self._winners),
                    evaluations=self._evaluations,
                )
            else:
                raise RuntimeError("polish result outside INIT/FINAL state")
        else:
            raise ValueError(f"unknown result kind {kind!r}")

    def is_complete(self) -> bool:
        return self._state is _State.DONE

    def final_result(self) -> DPRmlReport:
        if self._final is None:
            raise RuntimeError("DPRml run not complete")
        return self._final

    def progress(self) -> float:
        return self._items_done / self._total_items
