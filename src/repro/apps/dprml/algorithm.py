"""The DPRml donor-side Algorithm: evaluate candidate placements.

The alignment and model travel inside the Algorithm object, which the
framework ships to each donor once per problem (donors cache it), so
per-unit payloads are just ``(tree newick, taxon, edge indices)`` — a
few hundred bytes however large the dataset is.  This is the paper's
"all its likelihood calculations" on the donor side.
"""

from __future__ import annotations

from typing import Any

from repro.apps.dprml.config import DPRmlConfig
from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.optimize import optimize_all_branches
from repro.bio.phylo.stepwise import PlacementScore, evaluate_placement
from repro.bio.phylo.tree import parse_newick
from repro.core.problem import Algorithm


class DPRmlAlgorithm(Algorithm):
    """Evaluates placement batches and final polish tasks.

    Payload forms::

        ("place",  newick, taxon, (edge_index, ...))
            -> ("place", [PlacementScore, ...])
        ("polish", newick, passes)
            -> ("polish", (optimized_newick, log_likelihood))
    """

    def __init__(self, config: DPRmlConfig, alignment: SiteAlignment):
        self.config = config
        self.alignment = alignment
        # Model/rates are rebuilt lazily donor-side (cheap, avoids
        # shipping eigendecompositions).
        self._model = None
        self._rates = None

    def _ensure_model(self):
        if self._model is None:
            self._model = self.config.substitution_model()
            self._rates = self.config.rates()
        return self._model, self._rates

    def compute(self, payload: Any) -> Any:
        kind = payload[0]
        model, rates = self._ensure_model()
        if kind == "place":
            _kind, newick, taxon, edge_indices = payload
            scores = [
                evaluate_placement(
                    newick,
                    taxon,
                    edge_index,
                    self.alignment,
                    model,
                    rates,
                    local_passes=self.config.local_passes,
                    leaf_branch=self.config.leaf_branch,
                )
                for edge_index in edge_indices
            ]
            return ("place", scores)
        if kind == "polish":
            _kind, newick, passes = payload
            tree = parse_newick(newick)
            sub = self.alignment.subset(tree.leaf_names())
            if self.config.final_nni and tree.n_leaves >= 4:
                from repro.bio.phylo.nni import nni_search

                tree, _ll, _rounds = nni_search(tree, self.alignment, model, rates)
                sub = self.alignment.subset(tree.leaf_names())
            tl = TreeLikelihood(tree, sub, model, rates)
            loglik = optimize_all_branches(tl, passes=passes)
            return ("polish", (tree.newick(), loglik))
        raise ValueError(f"unknown DPRml task kind {kind!r}")

    def cost(self, payload: Any) -> float:
        """Abstract cost ∝ likelihood work.

        A placement on a tree of *k* taxa invalidates an O(depth) path
        of nodes, each update O(patterns × categories); the polish pass
        sweeps every branch.  These weights only matter to the
        simulator's clock, not to correctness.
        """
        kind = payload[0]
        npat = self.alignment.n_patterns
        ncat = self.config.gamma_categories if self.config.gamma_alpha > 0 else 1
        if kind == "place":
            _kind, newick, _taxon, edge_indices = payload
            taxa = newick.count(",") + 1  # leaf count, cheaply estimated
            return float(len(edge_indices) * taxa * npat * ncat) / 1e4
        _kind, newick, passes = payload
        taxa = newick.count(",") + 1
        return float(passes * (2 * taxa) * taxa * npat * ncat) / 1e4
