"""DPRml configuration: model choice and search parameters.

Recognised keys (the DPRml "straightforward configuration file")::

    model        = jc69 | k80 | f81 | f84 | hky85 | tn93 | gtr
    kappa        = 2.0        # transition/transversion (where applicable)
    freq_a/c/g/t = 0.25       # base frequencies (where applicable)
    gamma_alpha  = 0          # 0 disables rate heterogeneity
    gamma_categories = 4
    local_passes = 1          # per-placement local optimisation passes
    leaf_branch  = 0.1        # initial pendant branch length
    order_seed   = 0          # randomised addition order (stochastic runs)
    unit_target_seconds = 30  # adaptive granularity target
    final_nni    = false      # NNI rearrangement pass before final polish
    share_payloads = true     # donor-cached shared blob for the stage tree
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bio.phylo.models import GammaRates, SubstitutionModel, model_by_name
from repro.util.config import ConfigFile

MODELS = ("jc69", "k80", "f81", "f84", "hky85", "tn93", "gtr")


@dataclass(frozen=True)
class DPRmlConfig:
    """Validated DPRml settings."""

    model: str = "hky85"
    kappa: float = 2.0
    freqs: tuple[float, float, float, float] = (0.25, 0.25, 0.25, 0.25)
    gamma_alpha: float = 0.0
    gamma_categories: int = 4
    local_passes: int = 1
    leaf_branch: float = 0.1
    order_seed: int = 0
    unit_target_seconds: float = 30.0
    final_nni: bool = False
    share_payloads: bool = True

    def __post_init__(self) -> None:
        if self.model not in MODELS:
            raise ValueError(f"model must be one of {MODELS}")
        if self.kappa <= 0:
            raise ValueError("kappa must be positive")
        if self.gamma_alpha < 0:
            raise ValueError("gamma_alpha must be >= 0 (0 disables)")
        if self.gamma_categories < 1:
            raise ValueError("gamma_categories must be >= 1")
        if self.local_passes < 1:
            raise ValueError("local_passes must be >= 1")
        if self.leaf_branch <= 0:
            raise ValueError("leaf_branch must be positive")
        if self.unit_target_seconds <= 0:
            raise ValueError("unit_target_seconds must be positive")
        if abs(sum(self.freqs) - 1.0) > 1e-9 or any(f <= 0 for f in self.freqs):
            raise ValueError("freqs must be positive and sum to 1")

    @classmethod
    def from_config(cls, cfg: ConfigFile) -> "DPRmlConfig":
        freqs = (
            cfg.get_float("freq_a", 0.25),
            cfg.get_float("freq_c", 0.25),
            cfg.get_float("freq_g", 0.25),
            cfg.get_float("freq_t", 0.25),
        )
        return cls(
            model=cfg.get_choice("model", MODELS, "hky85"),
            kappa=cfg.get_float("kappa", 2.0),
            freqs=freqs,
            gamma_alpha=cfg.get_float("gamma_alpha", 0.0),
            gamma_categories=cfg.get_int("gamma_categories", 4),
            local_passes=cfg.get_int("local_passes", 1),
            leaf_branch=cfg.get_float("leaf_branch", 0.1),
            order_seed=cfg.get_int("order_seed", 0),
            unit_target_seconds=cfg.get_float("unit_target_seconds", 30.0),
            final_nni=cfg.get_bool("final_nni", False),
            share_payloads=cfg.get_bool("share_payloads", True),
        )

    @classmethod
    def from_path(cls, path: str | Path) -> "DPRmlConfig":
        return cls.from_config(ConfigFile.from_path(path))

    def substitution_model(self) -> SubstitutionModel:
        return model_by_name(
            self.model, kappa=self.kappa, freqs=np.asarray(self.freqs)
        )

    def rates(self) -> GammaRates:
        if self.gamma_alpha > 0:
            return GammaRates(self.gamma_alpha, self.gamma_categories)
        return GammaRates.uniform()
