"""DPRml: Distributed Phylogeny Reconstruction by Maximum Likelihood.

The paper (Sect. 3.2): a cross-platform distributed implementation of
stepwise-insertion ML tree building [11, 16] with "one of the most
extensive ranges of DNA substitution models".  DPRml "is a staged
computation": stage *i* fans the ``2i−5`` candidate placements of the
next taxon out to donors and synchronises before stage *i+1*, so "running
a single instance of the application will result in clients becoming
idle whilst waiting for stages to be completed" — which is why Fig. 2
measures six simultaneous instances.
"""

from repro.apps.dprml.config import DPRmlConfig
from repro.apps.dprml.datamanager import DPRmlDataManager, DPRmlReport
from repro.apps.dprml.algorithm import DPRmlAlgorithm
from repro.apps.dprml.driver import build_problem, run_dprml, run_many_dprml

__all__ = [
    "DPRmlAlgorithm",
    "DPRmlConfig",
    "DPRmlDataManager",
    "DPRmlReport",
    "build_problem",
    "run_dprml",
    "run_many_dprml",
]
