"""DSEARCH end-to-end drivers over any cluster backend."""

from __future__ import annotations

from repro.apps.dsearch.algorithm import DSearchAlgorithm
from repro.apps.dsearch.config import DSearchConfig
from repro.apps.dsearch.datamanager import DSearchDataManager, SearchReport
from repro.bio.seq.fasta import format_fasta
from repro.bio.seq.sequence import Sequence
from repro.core.problem import Problem


def build_problem(
    database: list[Sequence],
    queries: list[Sequence],
    config: DSearchConfig | None = None,
    name: str = "dsearch",
) -> Problem:
    """Assemble the self-contained DSEARCH Problem object.

    Exactly the paper's recipe: a DataManager, an Algorithm, and the
    data (the FASTA files ride along as blobs for the bulk channel).
    """
    config = config or DSearchConfig()
    return Problem(
        name=name,
        data_manager=DSearchDataManager(database, queries, config),
        algorithm=DSearchAlgorithm(config),
        blobs={
            "database.fasta": format_fasta(database).encode(),
            "queries.fasta": format_fasta(queries).encode(),
        },
    )


def run_dsearch(
    database: list[Sequence],
    queries: list[Sequence],
    config: DSearchConfig | None = None,
    workers: int = 4,
) -> SearchReport:
    """Convenience: run a whole search on a local thread cluster."""
    from repro.cluster.local import ThreadCluster
    from repro.core.scheduler import AdaptiveGranularity

    config = config or DSearchConfig()
    cluster = ThreadCluster(
        workers=workers,
        policy=AdaptiveGranularity(
            target_seconds=config.unit_target_seconds,
            probe_items=max(1, len(database) // (workers * 8) or 1),
            max_items=max(1, len(database) // max(1, workers)),
        ),
    )
    pid = cluster.submit(build_problem(database, queries, config))
    cluster.run()
    return cluster.final_result(pid)
