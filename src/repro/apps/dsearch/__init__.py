"""DSEARCH: sensitive database searching using distributed computing.

The paper (Sect. 3.1): the FASTA database is split "into dynamically
sized units that are subsequently searched on the donor machines", the
granularity "dynamically controlled during each search to match the
processing abilities of the current set of donor machines", and the
user picks a built-in rigorous algorithm via "a straightforward
configuration file".  Inputs: "a FASTA database file, a FASTA query
sequences file, a scoring scheme, and a configuration file."
"""

from repro.apps.dsearch.config import DSearchConfig
from repro.apps.dsearch.datamanager import DSearchDataManager, SearchReport
from repro.apps.dsearch.algorithm import DSearchAlgorithm
from repro.apps.dsearch.driver import build_problem, run_dsearch

__all__ = [
    "DSearchAlgorithm",
    "DSearchConfig",
    "DSearchDataManager",
    "SearchReport",
    "build_problem",
    "run_dsearch",
]
