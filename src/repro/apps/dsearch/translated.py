"""Translated search: DNA queries against a protein database.

Coding-sequence homology survives in protein space long after the DNA
has diverged (synonymous sites saturate first), so the sensitive way
to search with a DNA query is BLASTX-style: translate the query in all
six reading frames and search each frame as a protein query.  This
module builds that workload on top of the ordinary DSEARCH machinery —
one more demonstration that the framework composes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.dsearch.config import DSearchConfig
from repro.apps.dsearch.datamanager import SearchReport
from repro.apps.dsearch.driver import build_problem
from repro.bio.align.hits import Hit, merge_topk
from repro.bio.seq.alphabet import PROTEIN
from repro.bio.seq.sequence import Sequence
from repro.bio.seq.translate import six_frame_translations


@dataclass(frozen=True, slots=True)
class FrameHit:
    """One hit attributed back to the originating reading frame."""

    hit: Hit
    frame_id: str  # e.g. "q0_f1" or "q0_rc2"


def translated_queries(dna_queries: list[Sequence]) -> dict[str, list[Sequence]]:
    """Six-frame translate each DNA query.

    Returns ``{original_query_id: [six frame Sequences]}``; frames too
    short to translate are skipped (a <3nt query has no frames at all,
    which is reported as an error by ``six_frame_translations``).
    """
    return {q.seq_id: six_frame_translations(q) for q in dna_queries}


def build_translated_problem(
    protein_database: list[Sequence],
    dna_queries: list[Sequence],
    config: DSearchConfig | None = None,
    name: str = "dsearch-translated",
):
    """A DSEARCH Problem whose queries are all frames of all inputs."""
    config = config or DSearchConfig(scoring="blosum62")
    if config.scoring == "dna":
        raise ValueError("translated search needs a protein scoring scheme")
    for seq in protein_database:
        if seq.alphabet != PROTEIN:
            raise ValueError(f"{seq.seq_id}: database must be protein sequences")
    frames = [f for q in dna_queries for f in six_frame_translations(q)]
    return build_problem(protein_database, frames, config, name=name)


def fold_frames(
    report: SearchReport, dna_queries: list[Sequence], top_hits: int
) -> dict[str, list[FrameHit]]:
    """Collapse per-frame hit lists back to per-original-query top-k.

    A subject hit by several frames keeps only its best frame (the
    standard BLASTX presentation).
    """
    folded: dict[str, list[FrameHit]] = {}
    for query in dna_queries:
        best_by_subject: dict[str, FrameHit] = {}
        for frame_id, hits in report.hits.items():
            if not frame_id.startswith(query.seq_id + "_"):
                continue
            for hit in hits:
                seen = best_by_subject.get(hit.subject_id)
                if seen is None or hit.score > seen.hit.score:
                    best_by_subject[hit.subject_id] = FrameHit(hit, frame_id)
        ranked = merge_topk(top_hits, [fh.hit for fh in best_by_subject.values()])
        by_key = {(h.subject_id, h.score): h for h in ranked}
        folded[query.seq_id] = [
            fh
            for fh in sorted(
                best_by_subject.values(), key=lambda fh: fh.hit.sort_key()
            )
            if (fh.hit.subject_id, fh.hit.score) in by_key
        ][:top_hits]
    return folded


def run_translated_search(
    protein_database: list[Sequence],
    dna_queries: list[Sequence],
    config: DSearchConfig | None = None,
    workers: int = 4,
) -> dict[str, list[FrameHit]]:
    """End-to-end translated search on a local thread cluster."""
    from repro.cluster.local import ThreadCluster
    from repro.core.scheduler import AdaptiveGranularity

    config = config or DSearchConfig(scoring="blosum62")
    cluster = ThreadCluster(
        workers=workers,
        policy=AdaptiveGranularity(target_seconds=0.5, probe_items=2),
    )
    pid = cluster.submit(build_translated_problem(protein_database, dna_queries, config))
    cluster.run()
    report = cluster.final_result(pid)
    return fold_frames(report, dna_queries, config.top_hits)
