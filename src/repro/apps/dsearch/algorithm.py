"""The DSEARCH donor-side Algorithm: align queries against a DB slice."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.bio.align.banded import banded_global_score
from repro.bio.align.batch import (
    BucketPlan,
    SubjectBucket,
    banded_model_cells,
    batched_scores,
    plan_buckets,
    use_batched,
)
from repro.bio.align.hits import Hit, TopK
from repro.bio.align.kernels import cell_count
from repro.bio.align.nw import needleman_wunsch_score
from repro.bio.align.sw import smith_waterman_score
from repro.bio.seq.sequence import Sequence
from repro.core.problem import Algorithm
from repro.obs import unitstats


class DSearchAlgorithm(Algorithm):
    """Runs the configured rigorous aligner over one database slice.

    The payload is ``(queries, slice)`` — both lists of
    :class:`~repro.bio.seq.sequence.Sequence` — and the result is a
    per-query local top-k hit list (bounding result size keeps the
    upload small however large the slice was).

    Two execution paths produce identical hit lists:

    * the **batched** path (default) packs the slice into length
      buckets and sweeps the Gotoh recurrence across whole buckets at
      once (:mod:`repro.bio.align.batch`), which is several times
      faster on the short-to-mid length subjects real databases are
      full of;
    * the **scalar** path scores one ``(query, subject)`` pair at a
      time with the reference kernels.  It is kept as the correctness
      oracle, runs when ``batch = false`` or for buckets that would not
      amortise batching, and is the automatic fallback if the batched
      path fails for any reason.
    """

    def __init__(self, config) -> None:
        # Import deferred so the class stays light to pickle; donors
        # reconstruct the scheme locally from the config dataclass.
        self.config = config

    # -- scalar reference path ---------------------------------------------

    def _score(self, query: Sequence, subject: Sequence, scheme) -> float:
        algorithm = self.config.algorithm
        if algorithm == "sw":
            return smith_waterman_score(query, subject, scheme)
        if algorithm == "nw":
            return needleman_wunsch_score(query, subject, scheme)
        return banded_global_score(query, subject, scheme, band=self.config.band)

    def _variants(self, query: Sequence) -> list[Sequence]:
        # DNA features can sit on either strand of the subject; search
        # the reverse complement of the query against the given strand
        # (equivalent and cheaper than flipping every subject).
        variants = [query]
        if self.config.both_strands:
            variants.append(query.reverse_complement())
        return variants

    def _pair_scores_scalar(
        self, variants: list[Sequence], subjects: list[Sequence], scheme
    ) -> list[float]:
        return [
            max(self._score(variant, subject, scheme) for variant in variants)
            for subject in subjects
        ]

    # -- batched path -------------------------------------------------------

    def _pair_scores_batched(
        self,
        variants: list[Sequence],
        subjects: list[Sequence],
        scheme,
        plans: list[BucketPlan],
        buckets: dict[int, SubjectBucket],
    ) -> np.ndarray:
        cfg = self.config
        local = cfg.algorithm == "sw"
        band = cfg.band if cfg.algorithm == "banded" else None
        m = len(variants[0])
        nvar = len(variants)
        scores = np.empty(len(subjects))
        for pi, plan in enumerate(plans):
            effective = nvar * plan.effective_cells(m)
            if use_batched(plan, m, cfg.algorithm, cfg.band):
                bucket = buckets.get(pi)
                if bucket is None:
                    bucket = buckets[pi] = SubjectBucket(plan, subjects)
                per_variant = batched_scores(
                    variants, bucket, scheme, local=local, band=band
                )
                scores[list(plan.indices)] = per_variant.max(axis=0)
                unitstats.record("farm.align.cells.effective", effective)
                unitstats.record(
                    "farm.align.cells.padded", nvar * plan.padded_cells(m)
                )
                unitstats.record("farm.align.buckets.batched", 1.0)
            else:
                members = [subjects[i] for i in plan.indices]
                pair = self._pair_scores_scalar(variants, members, scheme)
                scores[list(plan.indices)] = pair
                # Scalar kernels fill exactly the useful cells (the
                # band, for banded alignment): no padding on this path,
                # and the same quantity cost() charges.
                if cfg.algorithm == "banded":
                    filled = nvar * banded_model_cells(m, plan.lengths, cfg.band)
                else:
                    filled = float(effective)
                unitstats.record("farm.align.cells.effective", filled)
                unitstats.record("farm.align.cells.padded", filled)
                unitstats.record("farm.align.pairs.scalar", float(plan.size))
        return scores

    # -- Algorithm interface ------------------------------------------------

    @staticmethod
    def _unpack(payload: Any) -> tuple[list[Sequence], list[Sequence]]:
        """Both payload shapes: inline ``(queries, subjects)`` and the
        shared form ``(queries, database, (lo, hi))`` where the donor
        cache has already substituted the blob references."""
        if len(payload) == 3:
            queries, database, (lo, hi) = payload
            return queries, database[lo:hi]
        queries, subjects = payload
        return queries, subjects

    def compute(self, payload: Any) -> dict[str, list[Hit]]:
        queries, subjects = self._unpack(payload)
        scheme = self.config.scheme()
        plans: list[BucketPlan] | None = None
        buckets: dict[int, SubjectBucket] = {}
        if self.config.batch and subjects:
            plans = plan_buckets(
                [len(s) for s in subjects], self.config.batch_waste_cap
            )
        results: dict[str, list[Hit]] = {}
        for query in queries:
            variants = self._variants(query)
            if plans is not None:
                try:
                    scores = self._pair_scores_batched(
                        variants, subjects, scheme, plans, buckets
                    )
                except Exception:
                    # The scalar kernels are the reference; anything the
                    # batched engine cannot handle (and any genuine
                    # input error, which will re-raise identically) goes
                    # through them instead.
                    unitstats.record("farm.align.batch.fallbacks", 1.0)
                    scores = self._pair_scores_scalar(variants, subjects, scheme)
            else:
                scores = self._pair_scores_scalar(variants, subjects, scheme)
            top = TopK(self.config.top_hits)
            for subject, score in zip(subjects, scores):
                top.offer(
                    Hit(
                        query_id=query.seq_id,
                        subject_id=subject.seq_id,
                        score=float(score),
                        subject_length=len(subject),
                    )
                )
            results[query.seq_id] = top.best()
        return results

    def cost(self, payload: Any) -> float:
        """Abstract cost: DP cells filled (the real work driver).

        Mirrors the donor's execution plan exactly: with batching on,
        each bucket is charged the padded cells the batched sweep fills
        — or, for buckets that fall back to the scalar kernels, the
        reference cell count (full matrix, or the per-pair auto-widened
        band for banded alignment).  Keeping the simulator's cost model
        and the donor's actual work in lockstep is what keeps adaptive
        granularity honest.
        """
        queries, subjects = self._unpack(payload)
        cfg = self.config
        strands = 2.0 if cfg.both_strands else 1.0
        lengths = [len(s) for s in subjects]
        if cfg.batch and subjects:
            plans = plan_buckets(lengths, cfg.batch_waste_cap)
            total = 0.0
            for query in queries:
                m = len(query)
                for plan in plans:
                    if use_batched(plan, m, cfg.algorithm, cfg.band):
                        total += plan.padded_cells(m)
                    elif cfg.algorithm == "banded":
                        total += banded_model_cells(m, plan.lengths, cfg.band)
                    else:
                        total += plan.effective_cells(m)
            return strands * total
        if cfg.algorithm == "banded":
            return strands * float(
                sum(
                    banded_model_cells(len(q), lengths, cfg.band)
                    for q in queries
                )
            )
        return strands * float(
            sum(cell_count(q, s) for q in queries for s in subjects)
        )
