"""The DSEARCH donor-side Algorithm: align queries against a DB slice."""

from __future__ import annotations

from typing import Any

from repro.bio.align.banded import banded_global_score
from repro.bio.align.hits import Hit, TopK
from repro.bio.align.kernels import cell_count
from repro.bio.align.nw import needleman_wunsch_score
from repro.bio.align.sw import smith_waterman_score
from repro.bio.seq.sequence import Sequence
from repro.core.problem import Algorithm


class DSearchAlgorithm(Algorithm):
    """Runs the configured rigorous aligner over one database slice.

    The payload is ``(queries, slice)`` — both lists of
    :class:`~repro.bio.seq.sequence.Sequence` — and the result is a
    per-query local top-k hit list (bounding result size keeps the
    upload small however large the slice was).
    """

    def __init__(self, config) -> None:
        # Import deferred so the class stays light to pickle; donors
        # reconstruct the scheme locally from the config dataclass.
        self.config = config

    def _score(self, query: Sequence, subject: Sequence, scheme) -> float:
        algorithm = self.config.algorithm
        if algorithm == "sw":
            return smith_waterman_score(query, subject, scheme)
        if algorithm == "nw":
            return needleman_wunsch_score(query, subject, scheme)
        return banded_global_score(query, subject, scheme, band=self.config.band)

    def compute(self, payload: Any) -> dict[str, list[Hit]]:
        queries, subjects = payload
        scheme = self.config.scheme()
        results: dict[str, list[Hit]] = {}
        for query in queries:
            # DNA features can sit on either strand of the subject;
            # search the reverse complement of the query against the
            # given strand (equivalent and cheaper than flipping every
            # subject).
            variants = [query]
            if self.config.both_strands:
                variants.append(query.reverse_complement())
            top = TopK(self.config.top_hits)
            for subject in subjects:
                score = max(
                    self._score(variant, subject, scheme) for variant in variants
                )
                top.offer(
                    Hit(
                        query_id=query.seq_id,
                        subject_id=subject.seq_id,
                        score=score,
                        subject_length=len(subject),
                    )
                )
            results[query.seq_id] = top.best()
        return results

    def cost(self, payload: Any) -> float:
        """Abstract cost: DP cells to fill (the real work driver).

        Banded alignment fills ~``2·band·len`` cells instead of the
        full matrix; the simulator charges accordingly.
        """
        queries, subjects = payload
        strands = 2.0 if self.config.both_strands else 1.0
        if self.config.algorithm == "banded":
            width = 2 * max(1, self.config.band) + 1
            return strands * float(
                sum(
                    min(cell_count(q, s), width * max(len(q), len(s)))
                    for q in queries
                    for s in subjects
                )
            )
        return strands * float(
            sum(cell_count(q, s) for q in queries for s in subjects)
        )
