"""The DSEARCH server-side DataManager: slice the database, merge hits."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.apps.dsearch.config import DSearchConfig
from repro.bio.align.hits import Hit, merge_topk
from repro.bio.seq.sequence import Sequence
from repro.core.problem import DataManager
from repro.core.workunit import UnitPayload, WorkResult


@dataclass(slots=True)
class SearchReport:
    """The assembled answer: global top hits per query plus accounting."""

    hits: dict[str, list[Hit]]
    database_size: int
    queries: list[str]
    units: int = 0

    def best_hit(self, query_id: str) -> Hit | None:
        ranked = self.hits.get(query_id, [])
        return ranked[0] if ranked else None


class DSearchDataManager(DataManager):
    """Partitions the FASTA database into contiguous slices.

    Units are *items = database sequences*, the granularity currency
    the adaptive scheduler controls.  Each result is a per-query local
    top-k which is merged order-independently into the global top-k.
    """

    def __init__(
        self,
        database: list[Sequence],
        queries: list[Sequence],
        config: DSearchConfig | None = None,
    ):
        if not database:
            raise ValueError("empty database")
        if not queries:
            raise ValueError("no query sequences")
        self.config = config or DSearchConfig()
        self.database = list(database)
        self.queries = list(queries)
        self._cursor = 0
        self._done_items = 0
        self._units = 0
        self._partial_hits: dict[str, list[list[Hit]]] = {
            q.seq_id: [] for q in self.queries
        }
        query_bytes = sum(len(q) for q in self.queries)
        self._query_overhead = query_bytes + 64 * len(self.queries)

    def total_items(self) -> int:
        return len(self.database)

    def next_unit(self, max_items: int) -> UnitPayload | None:
        if self._cursor >= len(self.database):
            return None
        lo = self._cursor
        hi = min(len(self.database), lo + max_items)
        self._cursor = hi
        subjects = self.database[lo:hi]
        subject_bytes = sum(len(s) for s in subjects)
        return UnitPayload(
            payload=(self.queries, subjects),
            items=hi - lo,
            input_bytes=self._query_overhead + subject_bytes + 64 * len(subjects),
        )

    def handle_result(self, result: WorkResult) -> None:
        for query_id, hits in result.value.items():
            self._partial_hits[query_id].append(hits)
        self._done_items += result.items
        self._units += 1

    def is_complete(self) -> bool:
        return self._done_items >= len(self.database)

    def final_result(self) -> SearchReport:
        merged = {
            query_id: merge_topk(self.config.top_hits, *parts)
            for query_id, parts in self._partial_hits.items()
        }
        return SearchReport(
            hits=merged,
            database_size=len(self.database),
            queries=[q.seq_id for q in self.queries],
            units=self._units,
        )

    def progress(self) -> float:
        return self._done_items / len(self.database)
