"""The DSEARCH server-side DataManager: slice the database, merge hits."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.apps.dsearch.config import DSearchConfig
from repro.bio.align.hits import Hit, merge_topk
from repro.bio.seq.sequence import Sequence
from repro.core.blobs import payload_nbytes
from repro.core.problem import DataManager
from repro.core.workunit import UnitPayload, WorkResult


@dataclass(slots=True)
class SearchReport:
    """The assembled answer: global top hits per query plus accounting."""

    hits: dict[str, list[Hit]]
    database_size: int
    queries: list[str]
    units: int = 0

    def best_hit(self, query_id: str) -> Hit | None:
        ranked = self.hits.get(query_id, [])
        return ranked[0] if ranked else None


class DSearchDataManager(DataManager):
    """Partitions the FASTA database into contiguous slices.

    Units are *items = database sequences*, the granularity currency
    the adaptive scheduler controls.  Each result is a per-query local
    top-k which is merged order-independently into the global top-k.

    With ``share_payloads`` (the default) the query set and the whole
    database are registered as shared blobs — the paper's design: each
    donor receives the database once and caches it, and every unit
    ships only ``(queries_ref, database_ref, (lo, hi))``.  With sharing
    off, each unit inlines the queries plus its slice, and
    ``input_bytes`` is the actual serialized payload size (not a
    per-sequence heuristic).
    """

    def __init__(
        self,
        database: list[Sequence],
        queries: list[Sequence],
        config: DSearchConfig | None = None,
    ):
        if not database:
            raise ValueError("empty database")
        if not queries:
            raise ValueError("no query sequences")
        self.config = config or DSearchConfig()
        self.database = list(database)
        self.queries = list(queries)
        self._cursor = 0
        self._done_items = 0
        self._units = 0
        self._partial_hits: dict[str, list[list[Hit]]] = {
            q.seq_id: [] for q in self.queries
        }
        if self.config.share_payloads:
            self._queries_ref = self.share(self.queries)
            self._database_ref = self.share(self.database)
            self._query_bytes = 0
        else:
            self._queries_ref = None
            self._database_ref = None
            self._query_bytes = payload_nbytes(self.queries)

    def total_items(self) -> int:
        return len(self.database)

    def next_unit(self, max_items: int) -> UnitPayload | None:
        if self._cursor >= len(self.database):
            return None
        lo = self._cursor
        hi = min(len(self.database), lo + max_items)
        self._cursor = hi
        if self._database_ref is not None:
            payload = (self._queries_ref, self._database_ref, (lo, hi))
            return UnitPayload(
                payload=payload,
                items=hi - lo,
                input_bytes=payload_nbytes(payload),
            )
        subjects = self.database[lo:hi]
        return UnitPayload(
            payload=(self.queries, subjects),
            items=hi - lo,
            input_bytes=self._query_bytes + payload_nbytes(subjects),
        )

    def handle_result(self, result: WorkResult) -> None:
        for query_id, hits in result.value.items():
            self._partial_hits[query_id].append(hits)
        self._done_items += result.items
        self._units += 1

    def is_complete(self) -> bool:
        return self._done_items >= len(self.database)

    def final_result(self) -> SearchReport:
        merged = {
            query_id: merge_topk(self.config.top_hits, *parts)
            for query_id, parts in self._partial_hits.items()
        }
        return SearchReport(
            hits=merged,
            database_size=len(self.database),
            queries=[q.seq_id for q in self.queries],
            units=self._units,
        )

    def progress(self) -> float:
        return self._done_items / len(self.database)
