"""DSEARCH configuration: the paper's "straightforward configuration
file" mapped onto :class:`~repro.util.config.ConfigFile`.

Recognised keys::

    algorithm   = sw | nw | banded      # which rigorous aligner
    scoring     = dna | blosum62 | pam250
    match       = 5                     # dna scheme only
    mismatch    = -4                    # dna scheme only
    gap_open    = -10
    gap_extend  = -1
    band        = 32                    # banded only
    top_hits    = 10                    # hits kept per query
    unit_target_seconds = 60            # adaptive granularity target
    both_strands = false                # DNA: also search the reverse strand
    batch       = true                  # batched multi-subject kernels
    batch_waste_cap = 0.25              # max padding waste per length bucket
    share_payloads = true               # donor-cached shared blobs for
                                        # queries + database (refs in units)
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.bio.align.scoring import ScoringScheme, dna_scheme, scheme_by_name
from repro.util.config import ConfigFile

ALGORITHMS = ("sw", "nw", "banded")
SCORINGS = ("dna", "blosum62", "pam250")


@dataclass(frozen=True)
class DSearchConfig:
    """Validated DSEARCH settings."""

    algorithm: str = "sw"
    scoring: str = "dna"
    match: float = 5.0
    mismatch: float = -4.0
    gap_open: float = -10.0
    gap_extend: float = -1.0
    band: int = 32
    top_hits: int = 10
    unit_target_seconds: float = 60.0
    both_strands: bool = False
    batch: bool = True
    batch_waste_cap: float = 0.25
    share_payloads: bool = True

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"algorithm must be one of {ALGORITHMS}")
        if self.scoring not in SCORINGS:
            raise ValueError(f"scoring must be one of {SCORINGS}")
        if self.top_hits < 1:
            raise ValueError("top_hits must be >= 1")
        if self.band < 0:
            raise ValueError("band must be >= 0")
        if self.unit_target_seconds <= 0:
            raise ValueError("unit_target_seconds must be positive")
        if self.both_strands and self.scoring != "dna":
            raise ValueError("both_strands only makes sense for DNA searches")
        if not (0.0 <= self.batch_waste_cap < 1.0):
            raise ValueError("batch_waste_cap must be in [0, 1)")

    @classmethod
    def from_config(cls, cfg: ConfigFile) -> "DSearchConfig":
        return cls(
            algorithm=cfg.get_choice("algorithm", ALGORITHMS, "sw"),
            scoring=cfg.get_choice("scoring", SCORINGS, "dna"),
            match=cfg.get_float("match", 5.0),
            mismatch=cfg.get_float("mismatch", -4.0),
            gap_open=cfg.get_float("gap_open", -10.0),
            gap_extend=cfg.get_float("gap_extend", -1.0),
            band=cfg.get_int("band", 32),
            top_hits=cfg.get_int("top_hits", 10),
            unit_target_seconds=cfg.get_float("unit_target_seconds", 60.0),
            both_strands=cfg.get_bool("both_strands", False),
            batch=cfg.get_bool("batch", True),
            batch_waste_cap=cfg.get_float("batch_waste_cap", 0.25),
            share_payloads=cfg.get_bool("share_payloads", True),
        )

    @classmethod
    def from_path(cls, path: str | Path) -> "DSearchConfig":
        return cls.from_config(ConfigFile.from_path(path))

    def scheme(self) -> ScoringScheme:
        """Build the scoring scheme this configuration describes."""
        if self.scoring == "dna":
            return dna_scheme(
                match=self.match,
                mismatch=self.mismatch,
                gap_open=self.gap_open,
                gap_extend=self.gap_extend,
            )
        return scheme_by_name(
            self.scoring, gap_open=self.gap_open, gap_extend=self.gap_extend
        )
