"""Attach statistical significance to DSEARCH results.

The distributed search returns raw alignment scores; this
post-processing step calibrates a Gumbel null for the query/scoring
system (see :mod:`repro.bio.align.stats`) and annotates each hit with
its E-value and bit score, turning "score 465" into "E = 3e-40" — the
number a biologist actually reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.dsearch.config import DSearchConfig
from repro.apps.dsearch.datamanager import SearchReport
from repro.bio.align.hits import Hit
from repro.bio.align.stats import ScoreStatistics, calibrate, database_search_space
from repro.bio.seq.sequence import Sequence


@dataclass(frozen=True, slots=True)
class ScoredHit:
    """A hit annotated with significance."""

    hit: Hit
    evalue: float
    bit_score: float

    @property
    def significant(self) -> bool:
        """The conventional E < 0.01 reporting threshold."""
        return self.evalue < 1e-2


@dataclass(slots=True)
class SignificantReport:
    """A :class:`SearchReport` with per-hit significance."""

    hits: dict[str, list[ScoredHit]]
    statistics: dict[str, ScoreStatistics]

    def significant_hits(self, query_id: str) -> list[ScoredHit]:
        return [h for h in self.hits[query_id] if h.significant]


def annotate_report(
    report: SearchReport,
    queries: list[Sequence],
    database: list[Sequence],
    config: DSearchConfig | None = None,
    calibration_samples: int = 40,
    seed: int = 0,
) -> SignificantReport:
    """Calibrate per query and annotate every retained hit.

    Calibration shuffles a handful of database sequences per query —
    cheap relative to the search itself (``calibration_samples`` extra
    alignments per query vs. the whole database).
    """
    config = config or DSearchConfig()
    scheme = config.scheme()
    by_id = {q.seq_id: q for q in queries}
    out_hits: dict[str, list[ScoredHit]] = {}
    stats: dict[str, ScoreStatistics] = {}
    for query_id, hits in report.hits.items():
        query = by_id.get(query_id)
        if query is None:
            raise KeyError(f"report references unknown query {query_id!r}")
        calibration = calibrate(
            query, database, scheme, samples=calibration_samples, seed=seed
        )
        stats[query_id] = calibration
        space = database_search_space(query, database)
        out_hits[query_id] = [
            ScoredHit(
                hit=hit,
                evalue=calibration.evalue(hit.score, space),
                bit_score=calibration.bit_score(hit.score),
            )
            for hit in hits
        ]
    return SignificantReport(hits=out_hits, statistics=stats)
