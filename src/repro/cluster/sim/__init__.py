"""Discrete-event simulation of a heterogeneous donor pool."""

from repro.cluster.sim.chaos import FaultPlan, WireChaos
from repro.cluster.sim.engine import Acquire, Simulator, SimResource, Timeout
from repro.cluster.sim.machines import (
    MachineSpec,
    heterogeneous_pool,
    homogeneous_pool,
    multicore_pool,
)
from repro.cluster.sim.network import NetworkModel
from repro.cluster.sim.cluster import SimCluster, SimReport

__all__ = [
    "Acquire",
    "FaultPlan",
    "MachineSpec",
    "NetworkModel",
    "SimCluster",
    "SimReport",
    "SimResource",
    "Simulator",
    "Timeout",
    "WireChaos",
    "heterogeneous_pool",
    "homogeneous_pool",
    "multicore_pool",
]
