"""Diurnal availability: lab desktops by day, compute donors by night.

The paper's pool is university computing laboratories — machines whose
owners sit at them during working hours.  Churn sessions model hard
departures; the *diurnal* model instead modulates how much of each
machine's speed the background service gets over the day:

* working hours — students at the keyboards, the donor service gets
  only the ``busy_availability`` fraction of cycles;
* nights/weekends — labs empty, donors get ``idle_availability``.

Expressed as churnless :class:`MachineSpec` sessions won't do (the
machine never leaves), so the diurnal profile instead generates
per-machine *sessions with availability encoded as speed*: each day is
split into a day-shift spec and a night-shift spec.  The helper
returns an expanded machine list usable anywhere a pool is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.sim.machines import MachineSpec

DAY_SECONDS = 24 * 3600.0


@dataclass(frozen=True, slots=True)
class DiurnalProfile:
    """Shape of a lab's day, in seconds from midnight."""

    work_start: float = 9 * 3600.0
    work_end: float = 18 * 3600.0
    busy_availability: float = 0.3
    idle_availability: float = 0.95

    def __post_init__(self) -> None:
        if not (0 <= self.work_start < self.work_end <= DAY_SECONDS):
            raise ValueError("need 0 <= work_start < work_end <= 24h")
        for name in ("busy_availability", "idle_availability"):
            value = getattr(self, name)
            if not (0 < value <= 1):
                raise ValueError(f"{name} must be in (0, 1]")

    def availability_at(self, time: float) -> float:
        """Donor-visible availability at absolute sim time *time*."""
        t = time % DAY_SECONDS
        if self.work_start <= t < self.work_end:
            return self.busy_availability
        return self.idle_availability

    def mean_availability(self) -> float:
        busy = self.work_end - self.work_start
        idle = DAY_SECONDS - busy
        return (
            busy * self.busy_availability + idle * self.idle_availability
        ) / DAY_SECONDS


def diurnal_sessions(
    profile: DiurnalProfile, horizon: float
) -> list[tuple[float, float, float]]:
    """Break ``[0, horizon)`` into constant-availability intervals.

    Returns ``(start, end, availability)`` triples covering the span.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    boundaries = []
    day = 0
    while day * DAY_SECONDS < horizon:
        base = day * DAY_SECONDS
        boundaries.extend((base, base + profile.work_start, base + profile.work_end))
        day += 1
    boundaries.append(day * DAY_SECONDS)
    out = []
    for start, end in zip(boundaries, boundaries[1:]):
        if start >= horizon:
            break
        end = min(end, horizon)
        if end <= start:
            continue
        out.append((start, end, profile.availability_at(start)))
    return out


def diurnal_pool(
    machines: list[MachineSpec],
    profile: DiurnalProfile,
    horizon: float,
) -> list[MachineSpec]:
    """Expand a pool into day/night shift specs.

    Each machine becomes one spec whose sessions alternate between the
    two availability regimes: we emit *two* MachineSpecs per machine —
    a "day" spec present only during working hours with the busy
    availability, and a "night" spec present the rest of the time with
    the idle availability.  Ids are suffixed ``@day`` / ``@night``; the
    pair never overlaps, so to the scheduler it behaves as one machine
    whose capacity breathes with the clock (re-registration between
    shifts is exactly the churn path real lab machines exercise daily).
    """
    intervals = diurnal_sessions(profile, horizon)
    day_sessions = tuple(
        (start, end) for start, end, a in intervals if a == profile.busy_availability
    )
    night_sessions = tuple(
        (start, end) for start, end, a in intervals if a == profile.idle_availability
    )
    out: list[MachineSpec] = []
    for spec in machines:
        if spec.sessions:
            raise ValueError(
                f"{spec.machine_id}: diurnal_pool expects churnless machines"
            )
        if day_sessions:
            out.append(
                MachineSpec(
                    machine_id=f"{spec.machine_id}@day",
                    speed=spec.speed,
                    availability=min(1.0, profile.busy_availability),
                    availability_jitter=spec.availability_jitter,
                    sessions=day_sessions,
                )
            )
        if night_sessions:
            out.append(
                MachineSpec(
                    machine_id=f"{spec.machine_id}@night",
                    speed=spec.speed,
                    availability=min(1.0, profile.idle_availability),
                    availability_jitter=spec.availability_jitter,
                    sessions=night_sessions,
                )
            )
    return out
