"""Network model: one server NIC shared by every donor.

The paper's deployment: "all machines connecting via a 100 Mbit/s
network to a single server (Pentium III 500 MHz)".  The server's link
is the shared bottleneck — every control message and every data
transfer serializes through it.  Donor-side links are assumed
uncontended (each donor talks only to the server).

Transfers are modelled as: per-message latency (propagation + RMI
dispatch) that does **not** occupy the link, plus ``bytes/bandwidth``
seconds of exclusive link time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.sim.engine import Effect, SimResource, Simulator, Timeout, transfer
from repro.obs.meters import BYTES_BUCKETS
from typing import Iterator

#: 100 Mbit/s in usable bytes/second (the paper's LAN).
DEFAULT_BANDWIDTH = 100e6 / 8
#: One control message costs roughly a TCP round trip + dispatch.
DEFAULT_LATENCY = 2e-3
#: Serialized size of a work request / small response envelope.
CONTROL_MESSAGE_BYTES = 512


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Link parameters.

    ``server_overhead`` models the per-message CPU cost on the single
    server (the paper's was a Pentium III 500 MHz): RMI dispatch,
    scheduling, result merging.  It occupies the serialized server
    resource, so floods of tiny work units saturate the server — the
    phenomenon that motivates adaptive granularity.  Defaults to zero
    (a pure network model); experiments that study unit-size overheads
    switch it on explicitly.
    """

    bandwidth: float = DEFAULT_BANDWIDTH
    latency: float = DEFAULT_LATENCY
    control_bytes: int = CONTROL_MESSAGE_BYTES
    server_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency cannot be negative")
        if self.server_overhead < 0:
            raise ValueError("server_overhead cannot be negative")

    @classmethod
    def high_latency(
        cls,
        bandwidth: float = 2e6,
        latency: float = 0.25,
        **kwargs,
    ) -> "NetworkConfig":
        """A WAN-ish link: donors far from the server.

        Every control exchange costs two round trips of a quarter
        second and payloads crawl through ~16 Mbit/s — the regime where
        a serial fetch→compute→submit donor idles most of its time on
        the wire and the pipelined runtime pays off hardest.
        """
        return cls(bandwidth=bandwidth, latency=latency, **kwargs)


class NetworkModel:
    """The server link as a simulation resource.

    With *meters* attached, link traffic streams into ``net.bytes`` /
    ``net.transfers`` counters and a transfer-size histogram — the
    simulated twin of the live transport's ``rmi.bytes.*`` meters.
    """

    def __init__(
        self, sim: Simulator, config: NetworkConfig | None = None, meters=None
    ):
        self.config = config or NetworkConfig()
        self.link = SimResource(sim, capacity=1, name="server-link")
        self.bytes_transferred = 0
        self.transfers = 0
        self.meters = meters

    def transfer_seconds(self, nbytes: int) -> float:
        return nbytes / self.config.bandwidth

    def transmit(self, nbytes: int) -> Iterator[Effect]:
        """Process fragment: move *nbytes* through the server link.

        Latency is paid off-link (it is propagation, not occupancy);
        the serialization time holds the link exclusively.
        """
        if nbytes < 0:
            raise ValueError("cannot transmit negative bytes")
        yield Timeout(self.config.latency)
        occupancy = self.config.server_overhead + (
            self.transfer_seconds(nbytes) if nbytes else 0.0
        )
        if occupancy > 0:
            yield from transfer(self.link, occupancy)
            self.bytes_transferred += nbytes
        self.transfers += 1
        if self.meters is not None:
            self.meters.counter("net.transfers").inc()
            self.meters.counter("net.bytes").inc(nbytes)
            self.meters.histogram("net.transfer.bytes", BYTES_BUCKETS).observe(nbytes)

    def transmit_blob(self, nbytes: int) -> Iterator[Effect]:
        """Process fragment: a shared-blob download (donor cache miss).

        Same link physics as :meth:`transmit`, metered separately under
        ``net.blob.*`` so the dedup saving is directly observable.
        """
        if self.meters is not None:
            self.meters.counter("net.blob.fetches").inc()
            self.meters.counter("net.blob.fetch.bytes").inc(nbytes)
        yield from self.transmit(nbytes)

    def control_roundtrip(self) -> Iterator[Effect]:
        """Process fragment: one request/response control exchange."""
        yield from self.transmit(self.config.control_bytes)
        yield from self.transmit(self.config.control_bytes)
