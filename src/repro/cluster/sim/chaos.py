"""Deterministic chaos: seeded fault schedules for the task farm.

The recovery machinery (leases, requeue, checkpoint restore, quorum
voting, reconnect) is only trustworthy if it survives *adversarial*
schedules, not just the friendly ones the regular tests produce.  This
module defines a seeded :class:`FaultPlan` that the simulated cluster
(:class:`~repro.cluster.sim.cluster.SimCluster`) weaves into donor
behaviour — crashes, corrupted results, dropped / duplicated / delayed
messages, one mid-run server restart — and a :class:`WireChaos`
injector that does byte-level damage on the live RMI transport
(:mod:`repro.rmi.transport` / :mod:`repro.rmi.datachannel`).

Determinism contract
--------------------
Every fault decision derives from ``seed`` through pure hashes
(:func:`~repro.util.rng.stable_seed`) or per-donor RNG streams
(:func:`~repro.util.rng.spawn_rng`) keyed by stable identifiers, never
from global randomness or wall-clock time.  Under the deterministic
sim engine the same ``(workload, FaultPlan)`` pair therefore replays
the exact same fault schedule — and the chaos property tests assert
the stronger end-to-end invariant: *for any seeded fault schedule,
every problem completes and the assembled results are bit-identical to
the fault-free run*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.util.rng import spawn_rng, stable_coin, stable_seed


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault schedule for a simulated run.

    All rates are probabilities in ``[0, 1]``; a default-constructed
    plan injects nothing.

    Parameters
    ----------
    seed:
        Root of every fault decision (see the determinism contract).
    crash_rate:
        Per completed unit: the donor process dies *without*
        deregistering (its lease must expire) and respawns after
        ``crash_downtime`` simulated seconds.
    byzantine_fraction:
        Fraction of donors (chosen by stable hash of the donor id)
        that corrupt results.
    corrupt_rate:
        Per unit, for byzantine donors: probability the returned value
        is replaced by a donor-specific poison value.  Corruption is a
        pure function of (donor, problem, unit), so a byzantine donor
        lies *consistently* — the adversarial worst case for quorum.
    drop_rate:
        Per result message: silently lost (lease expiry recovers it).
    dup_rate:
        Per result message: delivered twice (duplicate detection must
        hold).
    delay_rate / max_delay:
        Per result message: delayed by up to ``max_delay`` simulated
        seconds before landing; with ``max_delay`` beyond the lease
        timeout this exercises the late-result paths.
    server_restart_at:
        Simulated time at which the server is torn down and rebuilt.
        With journaling (the default whenever chaos is active) the
        rebuild is a real ``checkpoint + journal-replay`` recovery on
        real bytes; in-flight work must survive.  ``None`` disables it.
    journal_recovery:
        When True (default) the simulated server journals every
        mutation to an in-memory segment store and every restart —
        scheduled or ack-crash — recovers from those bytes.  False
        keeps the legacy in-memory checkpoint handoff.
    checkpoint_every:
        Simulated seconds between periodic v3 checkpoints (with
        journal compaction); ``None`` leaves recovery replaying the
        journal from genesis.
    torn_tail_bytes:
        Bytes chopped off the newest journal segment at each restart,
        simulating a torn write at the moment of death.  Recovery must
        truncate to the last valid frame and ride on.
    ack_crash_rate:
        Per accepted result: the server dies *after* journaling the
        fold but *before* the donor sees the ack; the donor retries
        against the recovered server, which must drop the retry as a
        duplicate (exactly-once across the crash).
    """

    seed: int = 0
    crash_rate: float = 0.0
    crash_downtime: float = 60.0
    byzantine_fraction: float = 0.0
    corrupt_rate: float = 1.0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: float = 30.0
    server_restart_at: float | None = None
    journal_recovery: bool = True
    checkpoint_every: float | None = None
    torn_tail_bytes: int = 0
    ack_crash_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "crash_rate",
            "byzantine_fraction",
            "corrupt_rate",
            "drop_rate",
            "dup_rate",
            "delay_rate",
            "ack_crash_rate",
        ):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.crash_downtime <= 0:
            raise ValueError("crash_downtime must be positive")
        if self.max_delay < 0:
            raise ValueError("max_delay cannot be negative")
        if self.server_restart_at is not None and self.server_restart_at <= 0:
            raise ValueError("server_restart_at must be positive")
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if self.torn_tail_bytes < 0:
            raise ValueError("torn_tail_bytes cannot be negative")
        if (
            self.torn_tail_bytes or self.checkpoint_every or self.ack_crash_rate
        ) and not self.journal_recovery:
            raise ValueError(
                "torn_tail_bytes / checkpoint_every / ack_crash_rate "
                "need journal_recovery=True"
            )

    def rng_for(self, *parts: Any) -> np.random.Generator:
        """A dedicated RNG stream for one (donor, session) context."""
        return spawn_rng(self.seed, "chaos", *parts)

    def is_byzantine(self, donor_id: str) -> bool:
        """Open-world membership coin (pool size unknown)."""
        return (
            stable_coin(self.seed, "byzantine", donor_id)
            < self.byzantine_fraction
        )

    def byzantine_set(self, donor_ids: Iterable[str]) -> frozenset[str]:
        """Choose exactly ``round(fraction * n)`` byzantine donors.

        Quorum voting (like any BFT scheme) only converges while honest
        donors outnumber the liars it still trusts; a per-donor coin
        can by chance corrupt nearly the whole pool and wedge every
        replicated unit.  When the pool is known up front, ranking by
        stable hash bounds the liar count while staying deterministic
        per seed.
        """
        ids = sorted(set(donor_ids))
        count = int(round(self.byzantine_fraction * len(ids)))
        ranked = sorted(
            ids, key=lambda d: stable_coin(self.seed, "byzantine", d)
        )
        return frozenset(ranked[:count])

    def corrupts_unit(
        self, donor_id: str, problem_id: int, unit_id: int
    ) -> bool:
        """Does a byzantine *donor_id* lie about this particular unit?"""
        return (
            stable_coin(self.seed, "corrupt", donor_id, problem_id, unit_id)
            < self.corrupt_rate
        )

    def corrupts(self, donor_id: str, problem_id: int, unit_id: int) -> bool:
        """Open-world convenience: membership coin + per-unit coin."""
        return self.is_byzantine(donor_id) and self.corrupts_unit(
            donor_id, problem_id, unit_id
        )

    def corrupted_value(
        self, donor_id: str, problem_id: int, unit_id: int
    ) -> tuple:
        """The poison value a byzantine donor returns for one unit.

        Donor-specific, so two byzantine donors can never accidentally
        agree with each other and sneak past quorum.
        """
        return (
            "byzantine",
            donor_id,
            problem_id,
            unit_id,
            stable_seed(self.seed, "poison", donor_id, problem_id, unit_id),
        )


class WireChaos:
    """Byte-level damage injector for the live transport layer.

    Attached to a :class:`~repro.rmi.transport.FrameSocket` or passed
    to the datachannel senders, it flips a byte of outgoing payloads
    with probability ``corrupt_rate`` and stalls sends by up to
    ``max_delay`` wall seconds with probability ``delay_rate``.  Both
    the RNG and the sleep are injectable so tests stay deterministic
    and instantaneous.
    """

    def __init__(
        self,
        seed: int = 0,
        corrupt_rate: float = 0.0,
        delay_rate: float = 0.0,
        max_delay: float = 0.0,
        rng: np.random.Generator | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        for name, rate in (
            ("corrupt_rate", corrupt_rate),
            ("delay_rate", delay_rate),
        ):
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if max_delay < 0:
            raise ValueError("max_delay cannot be negative")
        self.corrupt_rate = corrupt_rate
        self.delay_rate = delay_rate
        self.max_delay = max_delay
        self.rng = rng if rng is not None else spawn_rng(seed, "wire")
        self.sleep = sleep
        self.corrupted = 0
        self.delayed = 0

    def mangle(self, payload: bytes) -> bytes:
        """Return *payload*, possibly with one byte flipped."""
        if not payload or self.corrupt_rate <= 0:
            return payload
        if self.rng.random() >= self.corrupt_rate:
            return payload
        index = int(self.rng.integers(0, len(payload)))
        damaged = bytearray(payload)
        damaged[index] ^= 0xFF
        self.corrupted += 1
        return bytes(damaged)

    def maybe_delay(self) -> None:
        """Possibly stall the caller before a send."""
        if self.delay_rate <= 0 or self.max_delay <= 0:
            return
        if self.rng.random() < self.delay_rate:
            self.delayed += 1
            self.sleep(float(self.rng.uniform(0.0, self.max_delay)))
