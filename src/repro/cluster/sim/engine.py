"""A minimal process-based discrete-event simulation engine.

Processes are Python generators that ``yield`` effect objects:

* ``Timeout(dt)`` — resume after *dt* simulated seconds.
* ``Acquire(resource)`` — resume once the FIFO resource grants a slot;
  the process must later call ``resource.release()``.
* ``WaitEvent(event)`` — resume once the one-shot :class:`SimEvent` has
  fired (immediately when it already did).

The engine is deterministic: events at equal times fire in scheduling
order (a monotone sequence number breaks ties), so a seeded simulation
replays identically.  This is all the machinery the cluster model
needs — machines, network links and lease timers are each a process or
a resource.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator

#: The generator type simulation processes must have.
Process = Generator["Effect", Any, None]


class Effect:
    """Base class for things a process may yield."""


@dataclass(frozen=True, slots=True)
class Timeout(Effect):
    """Suspend the yielding process for ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative timeout {self.delay}")


@dataclass(frozen=True, slots=True)
class Acquire(Effect):
    """Suspend until the resource grants a slot (FIFO order)."""

    resource: "SimResource"


@dataclass(frozen=True, slots=True)
class WaitEvent(Effect):
    """Suspend until the one-shot :class:`SimEvent` fires."""

    event: "SimEvent"


class SimEvent:
    """A one-shot completion signal between processes.

    The pipelined machine model needs fork/join: a machine forks a
    download process for unit N+1, computes unit N, then *joins* the
    download.  Waiters arriving after :meth:`fire` resume immediately,
    so a join never races the completion.
    """

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self.fired = False
        self._waiters: list[Callable[[], None]] = []

    def fire(self) -> None:
        """Mark complete and wake every waiter (idempotent)."""
        if self.fired:
            return
        self.fired = True
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            self._sim.call_soon(wake)

    def _wait(self, wake: Callable[[], None]) -> None:
        if self.fired:
            self._sim.call_soon(wake)
        else:
            self._waiters.append(wake)


class SimResource:
    """A FIFO resource with fixed capacity (e.g. the server's NIC).

    Processes ``yield Acquire(res)`` and must call :meth:`release`
    exactly once per grant.  Waiters are served strictly in arrival
    order, which is how a single socket accept queue behaves.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: list[Callable[[], None]] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def _try_acquire(self, wake: Callable[[], None]) -> None:
        if self._in_use < self.capacity:
            self._in_use += 1
            self._sim.call_soon(wake)
        else:
            self._waiters.append(wake)

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            wake = self._waiters.pop(0)
            self._sim.call_soon(wake)
        else:
            self._in_use -= 1


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """The event loop: a heap of timestamped callbacks.

    When *meters* is supplied (a :class:`repro.obs.meters.MeterRegistry`),
    the loop streams ``sim.events`` / ``sim.processes.alive`` counts and
    the ``sim.time`` gauge into it, so a paused or long-running
    simulation is observable with the same snapshot machinery as a live
    deployment.
    """

    def __init__(self, meters=None) -> None:
        self._heap: list[_ScheduledEvent] = []
        self._seq = 0
        self._now = 0.0
        self._processes_alive = 0
        self.meters = meters

    @property
    def now(self) -> float:
        return self._now

    # -- low-level scheduling -------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> _ScheduledEvent:
        """Run *action* after *delay* simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = _ScheduledEvent(self._now + delay, self._seq, action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, action: Callable[[], None]) -> _ScheduledEvent:
        return self.schedule(0.0, action)

    def every(
        self, interval: float, action: Callable[[], None], until: Callable[[], bool]
    ) -> None:
        """Run *action* every *interval* seconds while ``until()`` is false."""
        if interval <= 0:
            raise ValueError("interval must be positive")

        def tick() -> None:
            if until():
                return
            action()
            self.schedule(interval, tick)

        self.schedule(interval, tick)

    # -- process management ----------------------------------------------

    def spawn(self, process: Process, delay: float = 0.0) -> None:
        """Start a generator-based process after *delay* seconds."""
        self._processes_alive += 1
        self.schedule(delay, lambda: self._step(process, None))

    def _step(self, process: Process, value: Any) -> None:
        try:
            effect = process.send(value)
        except StopIteration:
            self._processes_alive -= 1
            return
        if isinstance(effect, Timeout):
            self.schedule(effect.delay, lambda: self._step(process, None))
        elif isinstance(effect, Acquire):
            effect.resource._try_acquire(lambda: self._step(process, None))
        elif isinstance(effect, WaitEvent):
            effect.event._wait(lambda: self._step(process, None))
        else:
            raise TypeError(
                f"process yielded {effect!r}; expected Timeout, Acquire, "
                f"or WaitEvent"
            )

    # -- running -----------------------------------------------------------

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Drain the event heap; returns the final simulated time.

        Parameters
        ----------
        until:
            Optional horizon; events after it stay unprocessed.
        max_events:
            Safety valve against runaway simulations.
        """
        processed = 0
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                self._now = until
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now - 1e-12:
                raise RuntimeError("event heap corrupted: time went backwards")
            self._now = event.time
            event.action()
            processed += 1
            if processed > max_events:
                raise RuntimeError(f"exceeded {max_events} events; likely livelock")
        if self.meters is not None and processed:
            self.meters.counter("sim.events").inc(processed)
            self.meters.gauge("sim.time").set(self._now)
            self.meters.gauge("sim.processes.alive").set(self._processes_alive)
        return self._now

    def peek(self) -> float | None:
        """Time of the next pending event (None when drained)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


def transfer(resource: SimResource, seconds: float) -> Iterator[Effect]:
    """A sub-process: hold *resource* for *seconds* (a network transfer).

    Use as ``yield from transfer(link, size / bandwidth)``.
    """
    yield Acquire(resource)
    try:
        yield Timeout(seconds)
    finally:
        resource.release()
