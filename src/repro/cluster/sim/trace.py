"""Trace workloads: cost-only problems for large speedup sweeps.

Running DSEARCH or DPRml for real at every processor count from 1 to 83
would mean recomputing identical alignments/likelihoods dozens of
times.  Instead the benchmark harness runs the application once,
extracts its *workload trace* — per-item compute costs, organised into
stages — and replays the trace through the simulated cluster at each
processor count.  The replay exercises the same server, scheduler,
lease and network code; only the Algorithm body is skipped (its cost is
charged as virtual time via ``cost_hint``).

A trace is sound for this purpose because the paper's two applications
have schedule-independent task structure: DSEARCH's unit costs depend
only on the database split, and DPRml's stage *s* always contains the
same number of candidate evaluations with tree-size-dependent cost,
whichever placement won stage *s − 1*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.blobs import BLOB_REF_WIRE_BYTES, BlobRef, blob_key, canonical_dumps
from repro.core.problem import Algorithm, DataManager, Problem
from repro.core.workunit import UnitPayload, WorkResult
from repro.util.rng import spawn_rng


@dataclass(frozen=True, slots=True)
class TraceStage:
    """One barrier-delimited stage: independent items with known costs.

    ``shared_bytes`` models input that is identical for every unit of
    the stage (DSEARCH's query set): without payload sharing it is
    re-shipped with every unit; with sharing it travels to each donor
    once as a blob.
    """

    costs: tuple[float, ...]
    bytes_per_item: int = 1024
    shared_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.costs:
            raise ValueError("a stage must contain at least one item")
        if any(c <= 0 for c in self.costs):
            raise ValueError("item costs must be positive")
        if self.shared_bytes < 0:
            raise ValueError("shared_bytes cannot be negative")

    @property
    def total_cost(self) -> float:
        return float(sum(self.costs))


@dataclass(frozen=True, slots=True)
class WorkloadTrace:
    """A whole problem as stages of item costs.

    A single-stage trace is an embarrassingly parallel problem
    (DSEARCH); a multi-stage trace has a full barrier between stages
    (DPRml's stepwise insertion).
    """

    stages: tuple[TraceStage, ...]
    name: str = "trace"

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a trace needs at least one stage")

    @property
    def total_cost(self) -> float:
        return float(sum(stage.total_cost for stage in self.stages))

    @property
    def total_items(self) -> int:
        return sum(len(stage.costs) for stage in self.stages)

    @property
    def critical_path(self) -> float:
        """Lower bound on runtime with unlimited unit-speed donors: the
        largest single item of each stage, summed (barriers serialize
        stages)."""
        return float(sum(max(stage.costs) for stage in self.stages))

    @classmethod
    def single_stage(
        cls, costs: Sequence[float], bytes_per_item: int = 1024, name: str = "trace"
    ) -> "WorkloadTrace":
        return cls((TraceStage(tuple(float(c) for c in costs), bytes_per_item),), name)

    @classmethod
    def staged(
        cls,
        stage_costs: Sequence[Sequence[float]],
        bytes_per_item: int = 1024,
        shared_bytes: int = 0,
        name: str = "trace",
    ) -> "WorkloadTrace":
        """A multi-stage trace from per-stage cost lists (DPRml shape:
        a full barrier between consecutive stages)."""
        return cls(
            tuple(
                TraceStage(
                    tuple(float(c) for c in costs),
                    bytes_per_item,
                    shared_bytes,
                )
                for costs in stage_costs
            ),
            name,
        )


def compute_heavy_trace(
    items: int = 240,
    seed: int = 7,
    cost_range: tuple[float, float] = (4.0, 9.0),
    bytes_per_item: int = 2_000,
    name: str = "compute-heavy",
) -> WorkloadTrace:
    """The multi-core benchmark regime: compute dwarfs the wire.

    Per-item costs of seconds against ~2 kB of input put essentially
    the whole makespan in the donors' cores — the setting where a
    4-core worker pool should approach 4x a serial donor, and where the
    pipelined runtime's download overlap buys almost nothing.  Costs
    are uniform over *cost_range* from a deterministic stream, so every
    replay (and both arms of an A/B run) sees the identical workload.
    """
    rng = spawn_rng(seed, "compute_heavy_trace")
    lo, hi = cost_range
    costs = [float(c) for c in rng.uniform(lo, hi, size=items)]
    return WorkloadTrace.single_stage(costs, bytes_per_item, name=name)


class TraceDataManager(DataManager):
    """Partitions a :class:`WorkloadTrace`, honouring stage barriers.

    With ``share=True`` units reference the stage's bulk data through
    synthetic :class:`~repro.core.blobs.BlobRef`\\ s (sizes are real,
    content is not materialized) instead of charging it inline — the
    byte-traffic model of the content-addressed donor cache.  Keys are
    derived from the trace name and stage, so replaying an identical
    trace hits warm donor caches exactly as identical real data would.
    Shared traces are for trace-mode simulation only
    (``SimCluster(execute=False)``): the refs have no bytes behind them
    and cannot be resolved.
    """

    def __init__(self, trace: WorkloadTrace, share: bool = False):
        self.trace = trace
        self.share = share
        self._stage_index = 0
        self._cursor = 0          # next item within the current stage
        self._outstanding = 0     # items issued but not completed
        self._items_done = 0

    def _stage_refs(self, stage: TraceStage) -> tuple[BlobRef, ...]:
        """Synthetic blob references for one stage's bulk data."""
        refs = []
        data_bytes = len(stage.costs) * stage.bytes_per_item
        for kind, size in (("data", data_bytes), ("shared", stage.shared_bytes)):
            if size <= 0:
                continue
            key = blob_key(
                canonical_dumps((self.trace.name, self._stage_index, kind))
            )
            refs.append(BlobRef(key=key, size=size))
        return tuple(refs)

    def total_items(self) -> int:
        return self.trace.total_items

    def _current_stage(self) -> TraceStage | None:
        if self._stage_index >= len(self.trace.stages):
            return None
        return self.trace.stages[self._stage_index]

    def next_unit(self, max_items: int) -> UnitPayload | None:
        stage = self._current_stage()
        if stage is None:
            return None
        remaining = len(stage.costs) - self._cursor
        if remaining == 0:
            return None  # barrier: wait for outstanding results
        take = min(max_items, remaining)
        slice_costs = stage.costs[self._cursor : self._cursor + take]
        lo = self._cursor
        self._cursor += take
        self._outstanding += take
        if self.share:
            refs = self._stage_refs(stage)
            # Inline: the index range plus the reference envelopes —
            # the bulk data travels (at most once per donor) as blobs.
            return UnitPayload(
                payload=(slice_costs, (lo, lo + take)) + refs,
                items=take,
                input_bytes=24 + 8 * take + BLOB_REF_WIRE_BYTES * len(refs),
                cost_hint=float(sum(slice_costs)),
            )
        return UnitPayload(
            payload=slice_costs,
            items=take,
            input_bytes=take * stage.bytes_per_item + stage.shared_bytes,
            cost_hint=float(sum(slice_costs)),
        )

    def handle_result(self, result: WorkResult) -> None:
        self._outstanding -= result.items
        self._items_done += result.items
        stage = self._current_stage()
        if (
            stage is not None
            and self._cursor == len(stage.costs)
            and self._outstanding == 0
        ):
            self._stage_index += 1
            self._cursor = 0

    def is_complete(self) -> bool:
        return self._items_done >= self.trace.total_items

    def final_result(self) -> dict[str, Any]:
        return {"items": self._items_done, "stages": len(self.trace.stages)}

    def progress(self) -> float:
        return self._items_done / max(1, self.trace.total_items)


class TraceAlgorithm(Algorithm):
    """No-op compute; the cost hint carries all the timing."""

    def compute(self, payload: Any) -> Any:
        return None

    def cost(self, payload: Any) -> float:
        if isinstance(payload, tuple) and payload and isinstance(payload[0], tuple):
            payload = payload[0]  # shared form: (slice_costs, (lo, hi), *refs)
        return float(sum(payload))


def trace_problem(
    trace: WorkloadTrace, priority: int = 0, share: bool = False
) -> Problem:
    """Wrap a trace as a submittable :class:`Problem`."""
    return Problem(
        name=trace.name,
        data_manager=TraceDataManager(trace, share=share),
        algorithm=TraceAlgorithm(),
        priority=priority,
    )
