"""Trace workloads: cost-only problems for large speedup sweeps.

Running DSEARCH or DPRml for real at every processor count from 1 to 83
would mean recomputing identical alignments/likelihoods dozens of
times.  Instead the benchmark harness runs the application once,
extracts its *workload trace* — per-item compute costs, organised into
stages — and replays the trace through the simulated cluster at each
processor count.  The replay exercises the same server, scheduler,
lease and network code; only the Algorithm body is skipped (its cost is
charged as virtual time via ``cost_hint``).

A trace is sound for this purpose because the paper's two applications
have schedule-independent task structure: DSEARCH's unit costs depend
only on the database split, and DPRml's stage *s* always contains the
same number of candidate evaluations with tree-size-dependent cost,
whichever placement won stage *s − 1*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.problem import Algorithm, DataManager, Problem
from repro.core.workunit import UnitPayload, WorkResult


@dataclass(frozen=True, slots=True)
class TraceStage:
    """One barrier-delimited stage: independent items with known costs."""

    costs: tuple[float, ...]
    bytes_per_item: int = 1024

    def __post_init__(self) -> None:
        if not self.costs:
            raise ValueError("a stage must contain at least one item")
        if any(c <= 0 for c in self.costs):
            raise ValueError("item costs must be positive")

    @property
    def total_cost(self) -> float:
        return float(sum(self.costs))


@dataclass(frozen=True, slots=True)
class WorkloadTrace:
    """A whole problem as stages of item costs.

    A single-stage trace is an embarrassingly parallel problem
    (DSEARCH); a multi-stage trace has a full barrier between stages
    (DPRml's stepwise insertion).
    """

    stages: tuple[TraceStage, ...]
    name: str = "trace"

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a trace needs at least one stage")

    @property
    def total_cost(self) -> float:
        return float(sum(stage.total_cost for stage in self.stages))

    @property
    def total_items(self) -> int:
        return sum(len(stage.costs) for stage in self.stages)

    @property
    def critical_path(self) -> float:
        """Lower bound on runtime with unlimited unit-speed donors: the
        largest single item of each stage, summed (barriers serialize
        stages)."""
        return float(sum(max(stage.costs) for stage in self.stages))

    @classmethod
    def single_stage(
        cls, costs: Sequence[float], bytes_per_item: int = 1024, name: str = "trace"
    ) -> "WorkloadTrace":
        return cls((TraceStage(tuple(float(c) for c in costs), bytes_per_item),), name)


class TraceDataManager(DataManager):
    """Partitions a :class:`WorkloadTrace`, honouring stage barriers."""

    def __init__(self, trace: WorkloadTrace):
        self.trace = trace
        self._stage_index = 0
        self._cursor = 0          # next item within the current stage
        self._outstanding = 0     # items issued but not completed
        self._items_done = 0

    def total_items(self) -> int:
        return self.trace.total_items

    def _current_stage(self) -> TraceStage | None:
        if self._stage_index >= len(self.trace.stages):
            return None
        return self.trace.stages[self._stage_index]

    def next_unit(self, max_items: int) -> UnitPayload | None:
        stage = self._current_stage()
        if stage is None:
            return None
        remaining = len(stage.costs) - self._cursor
        if remaining == 0:
            return None  # barrier: wait for outstanding results
        take = min(max_items, remaining)
        slice_costs = stage.costs[self._cursor : self._cursor + take]
        self._cursor += take
        self._outstanding += take
        return UnitPayload(
            payload=slice_costs,
            items=take,
            input_bytes=take * stage.bytes_per_item,
            cost_hint=float(sum(slice_costs)),
        )

    def handle_result(self, result: WorkResult) -> None:
        self._outstanding -= result.items
        self._items_done += result.items
        stage = self._current_stage()
        if (
            stage is not None
            and self._cursor == len(stage.costs)
            and self._outstanding == 0
        ):
            self._stage_index += 1
            self._cursor = 0

    def is_complete(self) -> bool:
        return self._items_done >= self.trace.total_items

    def final_result(self) -> dict[str, Any]:
        return {"items": self._items_done, "stages": len(self.trace.stages)}

    def progress(self) -> float:
        return self._items_done / max(1, self.trace.total_items)


class TraceAlgorithm(Algorithm):
    """No-op compute; the cost hint carries all the timing."""

    def compute(self, payload: Any) -> Any:
        return None

    def cost(self, payload: Any) -> float:
        return float(sum(payload))


def trace_problem(trace: WorkloadTrace, priority: int = 0) -> Problem:
    """Wrap a trace as a submittable :class:`Problem`."""
    return Problem(
        name=trace.name,
        data_manager=TraceDataManager(trace),
        algorithm=TraceAlgorithm(),
        priority=priority,
    )
