"""Donor machine models.

The paper's pool: "approximately 200 desktop PCs of various modest
specifications (Pentium IIs up to Pentium IVs ...)" running the client
"as a low priority background service", plus a 32-node cluster — i.e.
machines differ in raw speed, are only *semi-idle* (the owner's
foreground work steals cycles unpredictably), and join/leave the pool.

A :class:`MachineSpec` captures all three dimensions:

* ``speed`` — items of reference work per second relative to a 1.0
  baseline machine (a PIII 1 GHz in the Fig. 1 experiment).
* ``availability`` — mean fraction of cycles the donor actually gets;
  per-unit multiplicative noise models the owner's bursty foreground
  load.
* ``sessions`` — optional (join, leave) times for churn experiments;
  an empty list means always present.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import spawn_rng


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """Static description of one donor machine."""

    machine_id: str
    speed: float = 1.0
    availability: float = 1.0
    availability_jitter: float = 0.0
    sessions: tuple[tuple[float, float], ...] = ()
    #: Parallel compute slots (worker-pool lanes).  ``speed`` is per
    #: core: a ``cores=4`` machine registers once with ``slots=4`` and
    #: computes up to four units concurrently under virtual time.
    cores: int = 1

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"{self.machine_id}: speed must be positive")
        if self.cores < 1:
            raise ValueError(f"{self.machine_id}: cores must be >= 1")
        if not (0 < self.availability <= 1.0):
            raise ValueError(f"{self.machine_id}: availability must be in (0, 1]")
        if not (0 <= self.availability_jitter < 1.0):
            raise ValueError(f"{self.machine_id}: jitter must be in [0, 1)")
        for start, end in self.sessions:
            if end <= start:
                raise ValueError(f"{self.machine_id}: empty session ({start}, {end})")

    def effective_rate(self, rng: np.random.Generator) -> float:
        """Sample this machine's work rate for one unit (items/sec
        equivalent): speed degraded by the owner's current load."""
        avail = self.availability
        if self.availability_jitter > 0:
            lo = max(1e-3, avail * (1 - self.availability_jitter))
            hi = min(1.0, avail * (1 + self.availability_jitter))
            avail = float(rng.uniform(lo, hi))
        return self.speed * avail

    def present_at(self, time: float) -> bool:
        """Is the machine in the pool at *time*? (Always, if no sessions.)"""
        if not self.sessions:
            return True
        return any(start <= time < end for start, end in self.sessions)


def homogeneous_pool(
    count: int,
    speed: float = 1.0,
    availability: float = 1.0,
    availability_jitter: float = 0.0,
    prefix: str = "pc",
) -> list[MachineSpec]:
    """The Fig. 1 setting: *count* identical machines.

    The paper used "a laboratory of 83 homogeneous processors (Pentium
    III 1 GHz)" that were nevertheless *semi-idle*; pass a small
    ``availability_jitter`` to reproduce that.
    """
    return [
        MachineSpec(
            machine_id=f"{prefix}-{i:03d}",
            speed=speed,
            availability=availability,
            availability_jitter=availability_jitter,
        )
        for i in range(count)
    ]


def heterogeneous_pool(
    count: int,
    seed: int = 0,
    speed_range: tuple[float, float] = (0.25, 2.0),
    availability_range: tuple[float, float] = (0.5, 1.0),
    availability_jitter: float = 0.2,
    prefix: str = "pc",
) -> list[MachineSpec]:
    """The deployment setting: PII-to-PIV desktops with assorted owners.

    Speeds are log-uniform over *speed_range* (hardware generations are
    multiplicative), mean availabilities uniform over
    *availability_range*.
    """
    rng = spawn_rng(seed, "heterogeneous_pool")
    lo, hi = speed_range
    speeds = np.exp(rng.uniform(np.log(lo), np.log(hi), size=count))
    avails = rng.uniform(*availability_range, size=count)
    return [
        MachineSpec(
            machine_id=f"{prefix}-{i:03d}",
            speed=float(speeds[i]),
            availability=float(avails[i]),
            availability_jitter=availability_jitter,
        )
        for i in range(count)
    ]


def multicore_pool(
    count: int,
    seed: int = 0,
    cores_choices: tuple[int, ...] = (1, 2, 4, 8),
    speed_range: tuple[float, float] = (0.25, 2.0),
    availability_range: tuple[float, float] = (0.5, 1.0),
    availability_jitter: float = 0.2,
    prefix: str = "pc",
) -> list[MachineSpec]:
    """A heterogeneous pool whose machines also differ in core count.

    The modern reading of the paper's pool: the spread is no longer
    just clock speed (PII vs PIV) but width — a donated workstation may
    bring eight cores while a laptop brings one.  Core counts are drawn
    uniformly from *cores_choices*; per-core speeds and availabilities
    as in :func:`heterogeneous_pool`.
    """
    rng = spawn_rng(seed, "multicore_pool")
    lo, hi = speed_range
    speeds = np.exp(rng.uniform(np.log(lo), np.log(hi), size=count))
    avails = rng.uniform(*availability_range, size=count)
    cores = rng.choice(np.asarray(cores_choices, dtype=np.intp), size=count)
    return [
        MachineSpec(
            machine_id=f"{prefix}-{i:03d}",
            speed=float(speeds[i]),
            availability=float(avails[i]),
            availability_jitter=availability_jitter,
            cores=int(cores[i]),
        )
        for i in range(count)
    ]


def churn_sessions(
    horizon: float,
    mean_uptime: float,
    mean_downtime: float,
    rng: np.random.Generator,
    start_offset: float | None = None,
) -> tuple[tuple[float, float], ...]:
    """Generate alternating up/down sessions out to *horizon* seconds.

    Up and down durations are exponential — the memoryless model of
    owners rebooting or reclaiming their desktops at arbitrary times.
    """
    if mean_uptime <= 0 or mean_downtime <= 0:
        raise ValueError("mean durations must be positive")
    sessions: list[tuple[float, float]] = []
    t = start_offset if start_offset is not None else float(rng.exponential(mean_downtime / 2))
    while t < horizon:
        up = float(rng.exponential(mean_uptime))
        sessions.append((t, min(horizon, t + up)))
        t += up + float(rng.exponential(mean_downtime))
    return tuple(sessions)


def with_churn(
    machines: list[MachineSpec],
    horizon: float,
    mean_uptime: float,
    mean_downtime: float,
    seed: int = 0,
) -> list[MachineSpec]:
    """Return copies of *machines* with generated churn sessions."""
    out = []
    for spec in machines:
        rng = spawn_rng(seed, "churn", spec.machine_id)
        out.append(
            MachineSpec(
                machine_id=spec.machine_id,
                speed=spec.speed,
                availability=spec.availability,
                availability_jitter=spec.availability_jitter,
                sessions=churn_sessions(horizon, mean_uptime, mean_downtime, rng),
            )
        )
    return out
