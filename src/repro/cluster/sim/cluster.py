"""SimCluster: the paper's deployment as a discrete-event simulation.

Drives the *real* :class:`~repro.core.server.TaskFarmServer` (same
scheduling code as the live cluster) under virtual time.  Each donor
machine is a simulation process executing the donor protocol:

    request work → download unit → compute → upload result → repeat

Compute time is ``unit cost / machine's sampled rate``; transfers
serialize through the shared server link.  Algorithms can really
execute (results are genuine, used by the application tests) or be
skipped in trace mode (cost-only payloads, used by the large speedup
sweeps where only timing matters).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.sim.chaos import FaultPlan
from repro.cluster.sim.engine import (
    Process,
    SimEvent,
    Simulator,
    Timeout,
    WaitEvent,
)
from repro.cluster.sim.machines import MachineSpec
from repro.cluster.sim.network import NetworkConfig, NetworkModel
from repro.core.blobs import DEFAULT_CACHE_BYTES, BlobCache, iter_blob_refs, resolve_payload
from repro.core.journal import JournalWriter, MemoryStore, compact, recover, torn_tail
from repro.core.integrity import IntegrityPolicy
from repro.core.problem import Problem
from repro.core.scheduler import GranularityPolicy
from repro.core.server import Assignment, PipelineConfig, TaskFarmServer
from repro.core.workunit import WorkResult
from repro.obs import Observability, unitstats
from repro.util.events import EventLog
from repro.util.rng import spawn_rng


@dataclass(slots=True)
class SimReport:
    """Outcome of one simulated run."""

    sim_time: float
    makespans: dict[int, float]
    results: dict[int, Any]
    completed: bool
    log: EventLog
    machine_units: dict[str, int] = field(default_factory=dict)
    machine_busy: dict[str, float] = field(default_factory=dict)
    bytes_transferred: int = 0

    def utilization(self, machine_id: str) -> float:
        """Busy fraction of one machine over the whole run."""
        if self.sim_time <= 0:
            return 0.0
        return min(1.0, self.machine_busy.get(machine_id, 0.0) / self.sim_time)

    @property
    def mean_utilization(self) -> float:
        if not self.machine_busy:
            return 0.0
        return sum(self.utilization(m) for m in self.machine_busy) / len(self.machine_busy)


class SimCluster:
    """A simulated deployment of the task farm.

    Parameters
    ----------
    machines:
        The donor pool (speeds, availability, churn sessions).
    policy:
        Granularity policy for the embedded server.
    lease_timeout:
        Server lease duration in simulated seconds.
    network:
        Shared-link parameters; defaults to the paper's 100 Mbit/s LAN.
    seed:
        Root seed for every stochastic element (availability noise).
    execute:
        When True the Algorithm really runs (results are genuine); when
        False only the unit's ``cost_hint`` is charged (trace mode).
    idle_poll:
        How long an idle donor waits before asking again — the paper's
        clients poll, they are not pushed to.
    integrity:
        Replication/quorum policy for the embedded server (see
        :class:`~repro.core.integrity.IntegrityPolicy`).
    chaos:
        A seeded :class:`~repro.cluster.sim.chaos.FaultPlan`; ``None``
        runs fault-free.
    donor_cache_bytes:
        Byte budget of each simulated donor's shared-blob cache,
        mirroring the live :class:`~repro.core.client.DonorClient`.
    pipeline:
        When set, the embedded server runs this
        :class:`~repro.core.server.PipelineConfig` and every machine
        uses the pipelined donor protocol: while unit N computes, a
        forked process downloads unit N+1, so the simulator reproduces
        the live prefetch runtime's download/compute overlap.  ``None``
        (the default) keeps the historical serial protocol.
    """

    def __init__(
        self,
        machines: list[MachineSpec],
        policy: GranularityPolicy | None = None,
        lease_timeout: float = 600.0,
        network: NetworkConfig | None = None,
        seed: int = 0,
        execute: bool = True,
        idle_poll: float = 5.0,
        obs: Observability | None = None,
        integrity: IntegrityPolicy | None = None,
        chaos: FaultPlan | None = None,
        max_unit_attempts: int = 5,
        donor_cache_bytes: int = DEFAULT_CACHE_BYTES,
        pipeline: PipelineConfig | None = None,
        tenants: list | None = None,
    ):
        if not machines:
            raise ValueError("need at least one machine")
        ids = [m.machine_id for m in machines]
        if len(set(ids)) != len(ids):
            raise ValueError("machine ids must be unique")
        self.machines = list(machines)
        # One observability bundle shared by the engine, the network
        # model and the embedded server — the simulated mirror of the
        # live cluster's single registry.
        self.obs = obs or Observability()
        self.sim = Simulator(meters=self.obs.meters)
        self._policy = policy
        self._lease_timeout = lease_timeout
        self._max_unit_attempts = max_unit_attempts
        self.integrity = integrity
        self.chaos = chaos
        self.pipeline = pipeline
        self.server = self._make_server()
        # Under chaos the server journals every mutation to an
        # in-memory segment store, so every restart is a genuine
        # bytes-level recovery drill (same framing code as DirStore).
        self._journal_enabled = chaos is not None and chaos.journal_recovery
        self.journal_store = MemoryStore() if self._journal_enabled else None
        self._checkpoint_bytes: bytes | None = None
        if self._journal_enabled:
            self.server.journal = JournalWriter(
                self.journal_store, meters=self.obs.meters
            )
        # Optional multi-tenant job gateway: fair-share dispatch +
        # admission control in front of the same server, driven by
        # virtual time.  Created after the journal writer so tenant
        # definitions land in the journal when recovery drills run.
        self.gateway = None
        if tenants:
            if chaos is not None and not self._journal_enabled:
                raise ValueError(
                    "a gateway under chaos requires journal_recovery=True "
                    "(the legacy checkpoint handoff cannot carry jobs)"
                )
            from repro.core.gateway import JobGateway

            self.gateway = JobGateway(self.server, tenants)
        self.network = NetworkModel(self.sim, network, meters=self.obs.meters)
        self.seed = seed
        self.execute = execute
        self.idle_poll = idle_poll
        self._machine_units: dict[str, int] = {m.machine_id: 0 for m in machines}
        self._machine_busy: dict[str, float] = {m.machine_id: 0.0 for m in machines}
        # Donor blob caches, keyed by machine — like an on-disk cache,
        # they survive sessions, crashes and server restarts.  Cache
        # traffic is metered straight into the shared registry (a donor
        # process interleaves with others, so thread-local unit stats
        # would misattribute it).
        self.donor_cache_bytes = donor_cache_bytes
        self._blob_caches: dict[str, BlobCache] = {}
        self._active_session: dict[str, int] = {}
        self._pending_submissions = 0
        self._problem_ids: list[int] = []
        # Chaos respawns get fresh session indices above any real ones.
        self._chaos_sessions = 1 << 16
        # Closed-world pool: bound the liar count to the configured
        # fraction (quorum voting needs the honest donors to outnumber
        # the liars; a per-donor coin cannot guarantee that).
        self._byzantine: frozenset[str] = (
            chaos.byzantine_set(ids) if chaos is not None else frozenset()
        )

    def _make_server(self, log: EventLog | None = None) -> TaskFarmServer:
        return TaskFarmServer(
            policy=self._policy,
            lease_timeout=self._lease_timeout,
            obs=self.obs,
            log=log,
            integrity=self.integrity,
            max_unit_attempts=self._max_unit_attempts,
            pipeline=self.pipeline,
        )

    # ------------------------------------------------------------------

    def submit(self, problem: Problem, at: float = 0.0) -> int:
        """Submit now (``at=0``) or at a future simulated time.

        "Now" is the current virtual time — 0 before the first
        :meth:`run`, later when submitting between runs (a drained
        cluster accepts further problems; donor blob caches stay warm).
        """
        pid = problem.problem_id
        self._problem_ids.append(pid)
        if at <= 0.0:
            self.server.submit(problem, now=self.sim.now)
        else:
            # Deferred submission: becomes a simulation event, so the
            # event log stays causal and donors idle until it lands.
            self._pending_submissions += 1

            def land() -> None:
                self.server.submit(problem, now=self.sim.now)
                self._pending_submissions -= 1

            self.sim.schedule(at, land)
        return pid

    def submit_job(self, tenant_id: str, problem: Problem, at: float = 0.0) -> int:
        """Submit through the job gateway (requires ``tenants=``).

        Mirrors :meth:`submit`: immediate at the current virtual time,
        or deferred as a simulation event.  Returns the problem id (the
        job id is recoverable via ``gateway`` introspection); donors
        keep polling while jobs sit queued behind tenant quotas.
        """
        if self.gateway is None:
            raise RuntimeError("SimCluster was built without tenants")
        pid = problem.problem_id
        self._problem_ids.append(pid)
        if at <= 0.0:
            self.gateway.submit_job(tenant_id, problem, now=self.sim.now)
        else:
            self._pending_submissions += 1

            def land() -> None:
                self.gateway.submit_job(tenant_id, problem, now=self.sim.now)
                self._pending_submissions -= 1

            self.sim.schedule(at, land)
        return pid

    def _pump_gateway(self) -> None:
        if self.gateway is not None:
            self.gateway.pump(self.sim.now)

    def _all_done(self) -> bool:
        """No active problems *and* none still scheduled to arrive."""
        return (
            self._pending_submissions == 0
            and self.server.all_complete()
            and (self.gateway is None or not self.gateway.has_open_jobs())
        )

    def status_snapshot(self) -> dict:
        """Mid-run JSON snapshot at the current virtual time.

        Pause the simulation with ``run(until=...)``, call this, resume
        with another ``run()`` — the simulated twin of the live
        facade's ``status_json``.
        """
        from repro.core.status import snapshot_dict

        return snapshot_dict(self.server, self.sim.now, gateway=self.gateway)

    def status_report(self) -> str:
        """Human-readable status table at the current virtual time."""
        from repro.core.status import render_status

        return render_status(self.server, self.sim.now)

    def run(self, until: float | None = None) -> SimReport:
        """Spawn every machine process and drain the simulation."""
        for spec in self.machines:
            sessions = spec.sessions or ((0.0, float("inf")),)
            for session_index, (start, end) in enumerate(sessions):
                self.sim.spawn(
                    self._spawn_session(spec, end, session_index), delay=start
                )
        # Periodic lease sweep, as the live server's timer thread does.
        def sweep() -> None:
            self.server.expire_leases(self.sim.now)
            self._pump_gateway()

        self.sim.every(
            max(1.0, self.server.leases.timeout / 4),
            sweep,
            until=self._all_done,
        )
        if self._journal_enabled and self.chaos.checkpoint_every is not None:
            self.sim.every(
                self.chaos.checkpoint_every,
                self._checkpoint_server,
                until=self._all_done,
            )
        if self.chaos is not None and self.chaos.server_restart_at is not None:
            self.sim.schedule(self.chaos.server_restart_at, self._restart_server)
        sim_time = self.sim.run(until=until)

        completed = self.server.all_complete()
        makespans: dict[int, float] = {}
        results: dict[int, Any] = {}
        for pid in self._problem_ids:
            try:
                makespans[pid] = self.server.makespan(pid)
                results[pid] = self.server.final_result(pid)
            except RuntimeError:
                pass  # unfinished/cancelled under an `until` horizon
            except KeyError:
                pass  # gateway job still queued: the server never saw it
        return SimReport(
            sim_time=sim_time,
            makespans=makespans,
            results=results,
            completed=completed,
            log=self.server.log,
            machine_units=dict(self._machine_units),
            machine_busy=dict(self._machine_busy),
            bytes_transferred=self.network.bytes_transferred,
        )

    # ------------------------------------------------------------------

    def _checkpoint_server(self) -> None:
        """Periodic v3 checkpoint: snapshot at the journal boundary,
        then rotate and compact the segments it covers.

        Synchronous in virtual time, so the snapshot and its recorded
        LSN describe exactly the same state — the sim twin of the live
        facade checkpointing under its lock.
        """
        from repro.core.checkpoint import dumps_checkpoint

        writer = self.server.journal
        lsn = writer.last_lsn
        self._checkpoint_bytes = dumps_checkpoint(
            self.server, self.sim.now, journal_lsn=lsn, gateway=self.gateway
        )
        writer.rotate()
        compact(self.journal_store, lsn)

    def _restart_server(self) -> None:
        """Chaos event: kill the server, recover it from real bytes.

        With journaling (the default under chaos) this is a full
        recovery drill: the dying server's in-memory state is simply
        dropped, a torn tail is optionally chopped off the journal, and
        a fresh server rebuilds itself from ``last checkpoint bytes +
        journal replay`` — the very path a live ``kill -9`` exercises.
        Leases die with the server; its donors' retries and the lease
        sweep pick up the pieces, as the live
        :class:`~repro.rmi.reconnect.ReconnectingPort` drives.
        ``journal_recovery=False`` keeps the legacy in-memory
        checkpoint handoff.
        """
        if self._all_done():
            return
        now = self.sim.now
        log = self.server.log  # event-log continuity across the restart
        log.record(now, "server.restarted")
        if not self._journal_enabled:
            from repro.core.checkpoint import dumps_checkpoint, loads_checkpoint

            blob = dumps_checkpoint(self.server, now)
            fresh = self._make_server(log=log)
            loads_checkpoint(blob, fresh, now)
            self.server = fresh
            return
        if self.chaos.torn_tail_bytes:
            torn_tail(self.journal_store, self.chaos.torn_tail_bytes)
        fresh = self._make_server(log=log)
        fresh_gateway = None
        if self.gateway is not None:
            from repro.core.gateway import JobGateway

            # A fresh, empty gateway attached to the fresh server;
            # recover() restores the checkpointed gateway state into it
            # and replays gateway.* journal records through it.
            fresh_gateway = JobGateway(fresh)
        recover(
            fresh,
            self.journal_store,
            checkpoint=self._checkpoint_bytes,
            now=now,
            gateway=fresh_gateway,
        )
        self.server = fresh
        if fresh_gateway is not None:
            self.gateway = fresh_gateway
            # Queued jobs freed slots may start immediately.
            self._pump_gateway()

    def _spawn_session(
        self, spec: MachineSpec, session_end: float, session_index: int
    ) -> Process:
        """The donor protocol for one session: serial, pipelined, or
        (for ``cores > 1``) a pool of parallel lanes."""
        if spec.cores > 1:
            return self._machine_process_multicore(spec, session_end, session_index)
        if self.pipeline is not None:
            return self._machine_process_pipelined(spec, session_end, session_index)
        return self._machine_process(spec, session_end, session_index)

    def _machine_process(
        self, spec: MachineSpec, session_end: float, session_index: int
    ) -> Process:
        """One donor session: register, pull work until done or gone.

        ``self.server`` is read dynamically throughout — a chaos
        restart swaps the server object out from under running donors,
        exactly as a live restart does.
        """
        sim = self.sim
        rng = spawn_rng(self.seed, "machine", spec.machine_id, session_index)
        chaos_rng = (
            self.chaos.rng_for(spec.machine_id, session_index)
            if self.chaos is not None
            else None
        )
        donor_id = spec.machine_id

        self.server.register_donor(donor_id, sim.now)
        self._active_session[donor_id] = session_index
        try:
            while True:
                if sim.now >= session_end or self._all_done():
                    return
                # Control round trip: ask the server for work.
                yield from self.network.control_roundtrip()
                if sim.now >= session_end:
                    return
                try:
                    assignment = self.server.request_work(donor_id, sim.now)
                except KeyError:
                    # A restarted server forgot us: re-register and
                    # retry, as the live ReconnectingPort's
                    # on_reconnect hook does.
                    self.server.register_donor(donor_id, sim.now)
                    self._active_session[donor_id] = session_index
                    continue
                if assignment is None:
                    if self._all_done():
                        return
                    yield Timeout(self.idle_poll)
                    continue
                finished = yield from self._execute_assignment(
                    spec, donor_id, assignment, rng, chaos_rng, session_end
                )
                if not finished:
                    return  # left the pool mid-compute
                if (
                    self.chaos is not None
                    and chaos_rng.random() < self.chaos.crash_rate
                ):
                    # Hard crash: no deregistration (the lease must
                    # expire on its own), back after the downtime as a
                    # fresh session.
                    self._chaos_sessions += 1
                    self.sim.spawn(
                        self._spawn_session(
                            spec, session_end, self._chaos_sessions
                        ),
                        delay=self.chaos.crash_downtime,
                    )
                    self._active_session.pop(donor_id, None)
                    return
        finally:
            # Leaving (or completing) deregisters; the server requeues
            # anything this donor still held.  Guard against a later
            # session of the same machine having already re-registered
            # (and against chaos crashes, which skip the goodbye).
            if self._active_session.get(donor_id) == session_index:
                self.server.deregister_donor(donor_id, sim.now)
                del self._active_session[donor_id]

    def _donor_cache(self, donor_id: str) -> BlobCache:
        cache = self._blob_caches.get(donor_id)
        if cache is None:
            meters = self.obs.meters
            cache = BlobCache(
                self.donor_cache_bytes,
                sink=lambda name, amount: meters.counter(name).inc(amount),
            )
            self._blob_caches[donor_id] = cache
        return cache

    def _download_unit(self, donor_id: str, assignment: Assignment) -> Process:
        """Move one unit's input across the link and resolve its blobs.

        Returns the payload the algorithm should see.  The inline part
        always crosses the wire; each referenced blob is downloaded
        only on a donor cache miss — the simulated twin of the live
        donor's fetch-on-miss path.  In trace mode (``execute=False``)
        references are tracked for cache accounting but never resolved
        (synthetic trace blobs have no content behind them).
        """
        refs = iter_blob_refs(assignment.payload)
        if not refs:
            yield from self.network.transmit(assignment.input_bytes)
            return assignment.payload
        inline = (
            assignment.inline_bytes
            if assignment.inline_bytes >= 0
            else assignment.input_bytes
        )
        yield from self.network.transmit(inline)
        cache = self._donor_cache(donor_id)
        fetch = (
            # Read self.server at call time: a chaos restart swaps it.
            (lambda ref: self.server.get_shared_blob(assignment.problem_id, ref.key))
            if self.execute
            else None
        )
        objects = {}
        for ref in refs:
            if not cache.contains(ref.key):
                yield from self.network.transmit_blob(ref.size)
            objects[ref.key] = cache.ensure(ref, fetch)
        if not self.execute:
            return assignment.payload
        return resolve_payload(assignment.payload, lambda ref: objects[ref.key])

    def _execute_assignment(
        self,
        spec: MachineSpec,
        donor_id: str,
        assignment: Assignment,
        rng,
        chaos_rng,
        session_end: float,
    ) -> Process:
        """Download, compute, upload.  Returns False if the machine's
        session ended mid-compute (the unit is abandoned)."""
        payload = yield from self._download_unit(donor_id, assignment)
        finished = yield from self._compute_and_upload(
            spec, donor_id, assignment, payload, rng, chaos_rng, session_end
        )
        return finished

    def _compute_and_upload(
        self,
        spec: MachineSpec,
        donor_id: str,
        assignment: Assignment,
        payload: Any,
        rng,
        chaos_rng,
        session_end: float,
    ) -> Process:
        """Compute an already-downloaded unit and upload the result.
        Returns False if the session ended mid-compute (unit abandoned).

        Split out of :meth:`_execute_assignment` so the pipelined
        protocol can run it on a payload a forked prefetch process
        downloaded earlier."""
        sim = self.sim
        algorithm = self.server.get_algorithm(assignment.problem_id)
        cost = assignment.cost_hint or algorithm.cost(payload)
        rate = spec.effective_rate(rng)
        duration = cost / rate

        if sim.now + duration > session_end:
            # The owner reclaims the machine before the unit finishes:
            # sleep to the session end and abandon the unit.  The lease
            # will expire and the server reissues it elsewhere.
            remaining = max(0.0, session_end - sim.now)
            self._machine_busy[donor_id] += remaining
            yield Timeout(remaining)
            return False

        yield Timeout(duration)
        self._machine_busy[donor_id] += duration

        extra: dict = {}
        if self.execute:
            with unitstats.collect() as stats:
                value = algorithm.compute(payload)
            if stats:
                extra = {"meters": stats}
            try:
                output_bytes = len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
            except Exception:
                output_bytes = 1024
        else:
            value = None
            output_bytes = max(256, assignment.input_bytes // 16)

        plan = self.chaos
        if plan is not None and donor_id in self._byzantine:
            # Key the corruption coin on the *submission ordinal*, not
            # the process-global problem id: the id counter advances
            # across clusters in one process, and keying on it would
            # make the "same" run draw different coins on replay.
            ordinal = self._problem_ids.index(assignment.problem_id)
            if plan.corrupts_unit(donor_id, ordinal, assignment.unit_id):
                # Byzantine donor: a consistent, donor-specific lie.
                value = plan.corrupted_value(
                    donor_id, ordinal, assignment.unit_id
                )

        deliveries = 1
        if plan is not None:
            if chaos_rng.random() < plan.drop_rate:
                # The result vanishes on the wire; the lease expires
                # and the server reissues the unit elsewhere.
                self._machine_units[donor_id] += 1
                return True
            if chaos_rng.random() < plan.delay_rate:
                yield Timeout(float(chaos_rng.uniform(0.0, plan.max_delay)))
            if chaos_rng.random() < plan.dup_rate:
                deliveries = 2

        yield from self.network.transmit(output_bytes)
        result = WorkResult(
            problem_id=assignment.problem_id,
            unit_id=assignment.unit_id,
            value=value,
            donor_id=donor_id,
            compute_seconds=duration,
            items=assignment.items,
            output_bytes=output_bytes,
            extra=extra,
        )
        for _ in range(deliveries):
            self.server.submit_result(result, sim.now)
            self._pump_gateway()
            if (
                plan is not None
                and plan.ack_crash_rate > 0
                and self._journal_enabled
                and chaos_rng.random() < plan.ack_crash_rate
            ):
                # Crash point *between* the journal append and the
                # donor's ack: the fold is durable but the donor never
                # heard so.  It retries against the recovered server,
                # which must shed the retry as a duplicate —
                # exactly-once folding across the crash.  (The rate
                # guard keeps the rng stream untouched for plans that
                # never ack-crash, preserving their fault schedules.)
                self._restart_server()
                self.server.submit_result(result, sim.now)
                self._pump_gateway()
        self._machine_units[donor_id] += 1
        return True

    # -- the pipelined donor protocol -----------------------------------

    def _fetch_assignment(
        self, donor_id: str, session_index: int, slots: int = 1
    ) -> Process:
        """Control round trip + request + download, as one step.

        Returns ``(assignment, payload)``; ``(None, None)`` when the
        server was idle or forgot us (a chaos restart — we re-register
        and let the caller retry).
        """
        sim = self.sim
        yield from self.network.control_roundtrip()
        try:
            assignment = self.server.request_work(donor_id, sim.now)
        except KeyError:
            self.server.register_donor(donor_id, sim.now, slots=slots)
            self._active_session[donor_id] = session_index
            return None, None
        if assignment is None:
            return None, None
        payload = yield from self._download_unit(donor_id, assignment)
        return assignment, payload

    def _prefetch_process(
        self,
        donor_id: str,
        session_index: int,
        box: list,
        event: SimEvent,
    ) -> Process:
        """Forked download of the *next* unit, overlapping compute.

        Fills ``box[0]`` with ``(assignment, payload)`` and fires
        *event* when done.  Aborts (leaving ``(None, None)``) when the
        session is no longer current — a dead donor's prefetch must not
        resurrect its registration — or when the server has no work.  A
        restarted server (KeyError) is also left for the main loop's
        synchronous path to re-register.
        """
        try:
            if self._active_session.get(donor_id) != session_index:
                return
            yield from self.network.control_roundtrip()
            if self._active_session.get(donor_id) != session_index:
                return
            try:
                assignment = self.server.request_work(donor_id, self.sim.now)
            except KeyError:
                return
            if assignment is None:
                return
            payload = yield from self._download_unit(donor_id, assignment)
            box[0] = (assignment, payload)
        finally:
            event.fire()

    def _machine_process_pipelined(
        self, spec: MachineSpec, session_end: float, session_index: int
    ) -> Process:
        """One donor session under the pipelined protocol.

        Identical to :meth:`_machine_process` except that while unit N
        computes, a forked :meth:`_prefetch_process` downloads unit
        N+1; joining an already-fired prefetch is a *hit* (compute
        never stalled), otherwise the wait is metered as donor idle
        gap.  Leases a consumed-too-late session leaves behind are
        requeued by deregistration or lease expiry, exactly as for the
        serial protocol.
        """
        sim = self.sim
        meters = self.obs.meters
        rng = spawn_rng(self.seed, "machine", spec.machine_id, session_index)
        chaos_rng = (
            self.chaos.rng_for(spec.machine_id, session_index)
            if self.chaos is not None
            else None
        )
        donor_id = spec.machine_id

        self.server.register_donor(donor_id, sim.now)
        self._active_session[donor_id] = session_index
        slot: tuple[list, SimEvent] | None = None
        try:
            while True:
                if sim.now >= session_end or self._all_done():
                    return
                if slot is not None:
                    box, event = slot
                    slot = None
                    if event.fired:
                        meters.counter("farm.pipeline.prefetch.hits").inc()
                    else:
                        start = sim.now
                        yield WaitEvent(event)
                        gap = sim.now - start
                        meters.counter("farm.pipeline.prefetch.misses").inc()
                        if gap > 0:
                            meters.counter(
                                "farm.pipeline.idle.gap.seconds"
                            ).inc(gap)
                    assignment, payload = box[0]
                else:
                    # Cold start / post-idle: synchronous fetch.
                    meters.counter("farm.pipeline.prefetch.misses").inc()
                    assignment, payload = yield from self._fetch_assignment(
                        donor_id, session_index
                    )
                if assignment is None:
                    if self._all_done():
                        return
                    yield Timeout(self.idle_poll)
                    continue
                # Fork the download of the next unit, then compute this
                # one — the overlap the whole pipeline exists for.
                box = [(None, None)]
                event = SimEvent(sim)
                sim.spawn(
                    self._prefetch_process(donor_id, session_index, box, event)
                )
                slot = (box, event)
                finished = yield from self._compute_and_upload(
                    spec, donor_id, assignment, payload, rng, chaos_rng, session_end
                )
                if not finished:
                    return  # left the pool mid-compute
                if (
                    self.chaos is not None
                    and chaos_rng.random() < self.chaos.crash_rate
                ):
                    self._chaos_sessions += 1
                    self.sim.spawn(
                        self._spawn_session(
                            spec, session_end, self._chaos_sessions
                        ),
                        delay=self.chaos.crash_downtime,
                    )
                    self._active_session.pop(donor_id, None)
                    return
        finally:
            if self._active_session.get(donor_id) == session_index:
                self.server.deregister_donor(donor_id, sim.now)
                del self._active_session[donor_id]

    # -- the multi-core donor protocol -----------------------------------

    def _machine_process_multicore(
        self, spec: MachineSpec, session_end: float, session_index: int
    ) -> Process:
        """One session of a ``cores > 1`` machine: parallel lanes.

        The virtual-time mirror of the live worker pool: the machine
        registers *once*, advertising ``slots=cores``, then runs one
        lane process per core, each independently pulling, downloading
        and computing units (downloads still serialize through the
        shared link, like lanes sharing one NIC).  The session
        deregisters when its last lane returns; a chaos crash in any
        lane takes the whole machine down, exactly as a host crash
        kills every pool worker at once.
        """
        sim = self.sim
        donor_id = spec.machine_id
        self.server.register_donor(donor_id, sim.now, slots=spec.cores)
        self._active_session[donor_id] = session_index
        lane_done: list[SimEvent] = []
        for lane in range(spec.cores):
            event = SimEvent(sim)
            lane_done.append(event)
            sim.spawn(
                self._lane_process(spec, session_end, session_index, lane, event)
            )
        for event in lane_done:
            yield WaitEvent(event)
        if self._active_session.get(donor_id) == session_index:
            self.server.deregister_donor(donor_id, sim.now)
            del self._active_session[donor_id]

    def _lane_process(
        self,
        spec: MachineSpec,
        session_end: float,
        session_index: int,
        lane: int,
        done_event: SimEvent,
    ) -> Process:
        """One compute lane (core) of a multi-core donor session.

        Runs the serial pull protocol — or, when the cluster is
        pipelined, the double-buffered one — against the *shared*
        donor registration.  Every lane's leases count against the one
        donor, whose depth gate the server already scaled by ``slots``
        (:meth:`~repro.core.server.PipelineConfig.depth_for`).  A lane
        observing that its session is no longer current (crash or
        replacement) exits quietly without touching the registration.
        """
        sim = self.sim
        meters = self.obs.meters
        donor_id = spec.machine_id
        rng = spawn_rng(
            self.seed, "machine", spec.machine_id, session_index, "lane", lane
        )
        chaos_rng = (
            self.chaos.rng_for(spec.machine_id, session_index, "lane", lane)
            if self.chaos is not None
            else None
        )
        pipelined = self.pipeline is not None
        slot: tuple[list, SimEvent] | None = None
        try:
            while True:
                if sim.now >= session_end or self._all_done():
                    return
                if self._active_session.get(donor_id) != session_index:
                    return  # machine crashed or was replaced
                if slot is not None:
                    box, event = slot
                    slot = None
                    if event.fired:
                        meters.counter("farm.pipeline.prefetch.hits").inc()
                    else:
                        start = sim.now
                        yield WaitEvent(event)
                        gap = sim.now - start
                        meters.counter("farm.pipeline.prefetch.misses").inc()
                        if gap > 0:
                            meters.counter(
                                "farm.pipeline.idle.gap.seconds"
                            ).inc(gap)
                    assignment, payload = box[0]
                else:
                    if pipelined:
                        meters.counter("farm.pipeline.prefetch.misses").inc()
                    assignment, payload = yield from self._fetch_assignment(
                        donor_id, session_index, slots=spec.cores
                    )
                if assignment is None:
                    if self._all_done():
                        return
                    yield Timeout(self.idle_poll)
                    continue
                if pipelined:
                    box = [(None, None)]
                    event = SimEvent(sim)
                    sim.spawn(
                        self._prefetch_process(
                            donor_id, session_index, box, event
                        )
                    )
                    slot = (box, event)
                finished = yield from self._compute_and_upload(
                    spec, donor_id, assignment, payload, rng, chaos_rng, session_end
                )
                if not finished:
                    return  # left the pool mid-compute
                if (
                    self.chaos is not None
                    and chaos_rng.random() < self.chaos.crash_rate
                    and self._active_session.get(donor_id) == session_index
                ):
                    # Hard host crash: every lane dies with the machine.
                    # This lane schedules the whole-machine respawn; the
                    # currency check above stops sibling lanes.
                    self._chaos_sessions += 1
                    self.sim.spawn(
                        self._spawn_session(
                            spec, session_end, self._chaos_sessions
                        ),
                        delay=self.chaos.crash_downtime,
                    )
                    self._active_session.pop(donor_id, None)
                    return
        finally:
            done_event.fire()
