"""Cluster backends.

Two interchangeable ways to run a :class:`~repro.core.server.TaskFarmServer`
with donors:

* :mod:`repro.cluster.local` — real processes on this machine, talking
  RMI over localhost TCP.  Exercises every byte of the live code path.
* :mod:`repro.cluster.sim` — a deterministic discrete-event simulation
  of the paper's deployment (hundreds of heterogeneous, semi-idle donor
  PCs behind a shared 100 Mbit/s link), driving the *same* server state
  machine under virtual time.  This is what regenerates the paper's
  speedup figures on one machine.
"""
