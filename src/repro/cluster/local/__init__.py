"""Real multi-process cluster on localhost (the live code path)."""

from repro.cluster.local.cluster import (
    LocalCluster,
    ServerFacade,
    ThreadCluster,
    make_blob_fetch,
)
from repro.cluster.local.submit import RemoteSubmitter

__all__ = [
    "LocalCluster",
    "RemoteSubmitter",
    "ServerFacade",
    "ThreadCluster",
    "make_blob_fetch",
]
