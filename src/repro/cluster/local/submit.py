"""Remote problem submission.

The paper (Sect. 2.1): "The users of the system do not need any
knowledge of the topology or workings of the system in order to submit
problems and get their processed results back."  A
:class:`RemoteSubmitter` is that user-side handle: it connects to a
running ``repro-server``, ships a self-contained Problem over RMI,
polls progress, and fetches the assembled result — from any machine
that can reach the server.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.problem import Problem
from repro.core.server import ProblemStatus
from repro.rmi import connect


class RemoteSubmitter:
    """User-side handle on a remote task farm.

    Example
    -------
    >>> with RemoteSubmitter("farm.example.org", 9317) as farm:
    ...     pid = farm.submit(problem)
    ...     result = farm.wait(pid, timeout=3600)
    """

    def __init__(self, host: str, port: int, object_name: str = "taskfarm"):
        self._proxy = connect(host, port, object_name)

    def submit(self, problem: Problem) -> int:
        """Ship a Problem to the farm; returns its id."""
        return self._proxy.submit(problem)

    def progress(self, problem_id: int) -> float:
        return self._proxy.progress(problem_id)

    def is_complete(self, problem_id: int) -> bool:
        return self._proxy.status_name(problem_id) == ProblemStatus.COMPLETE.value

    def result(self, problem_id: int) -> Any:
        """The final result; raises if the problem is still running."""
        return self._proxy.final_result(problem_id)

    def wait(
        self,
        problem_id: int,
        timeout: float = 3600.0,
        poll_interval: float = 0.5,
        on_progress=None,
    ) -> Any:
        """Block until completion; returns the final result.

        ``on_progress`` (if given) is called with the progress fraction
        on every poll — hook for progress bars.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = self._proxy.status_name(problem_id)
            if status == ProblemStatus.COMPLETE.value:
                return self.result(problem_id)
            if status == ProblemStatus.FAILED.value:
                raise RuntimeError(
                    f"problem {problem_id} failed: "
                    f"{self._proxy.failure_reason(problem_id)}"
                )
            if on_progress is not None:
                on_progress(self.progress(problem_id))
            time.sleep(poll_interval)
        raise TimeoutError(
            f"problem {problem_id} did not complete within {timeout}s "
            f"(progress {self.progress(problem_id):.1%})"
        )

    def status_report(self) -> str:
        """The farm's operator status text."""
        return self._proxy.status_report()

    def close(self) -> None:
        self._proxy.close()

    def __enter__(self) -> "RemoteSubmitter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
