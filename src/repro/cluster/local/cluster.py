"""Live cluster backends: donors as threads or as separate processes.

:class:`ThreadCluster` runs donors as threads calling straight into the
server — fast and deterministic enough for tests and small jobs.

:class:`LocalCluster` is the full live path: the
:class:`~repro.core.server.TaskFarmServer` sits behind an RMI facade on
a TCP port, and each donor is a separate OS process running the real
:class:`~repro.core.client.DonorClient` against an RMI proxy — exactly
the paper's topology (one server, N donor machines) compressed onto
localhost.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.core.blobs import BlobRef, iter_blob_refs
from repro.core.client import DonorClient, InProcessServerPort
from repro.core.problem import Algorithm, Problem
from repro.core.scheduler import GranularityPolicy
from repro.core.server import (
    Assignment,
    PipelineConfig,
    ProblemStatus,
    TaskFarmServer,
)
from repro.core.workunit import WorkResult
from repro.rmi import RMIServer, connect
from repro.rmi.datachannel import DataChannelServer, fetch_data
from repro.rmi.errors import ChecksumError, RMIError


class ServerFacade:
    """Thread-safe, clock-injecting wrapper exported over RMI.

    The pure state machine takes ``now`` everywhere and is not
    thread-safe; this facade adds both (wall-clock time, one lock).
    Expired leases are swept on every ``request_work``, and
    :meth:`start_lease_sweeper` adds a timer-driven sweep so a farm
    whose donors all vanished still reclaims their leases without
    waiting for inbound traffic.
    """

    def __init__(
        self,
        server: TaskFarmServer,
        data_channel: DataChannelServer | None = None,
        gateway=None,
    ):
        self._server = server
        self._lock = threading.RLock()
        self._data_channel = data_channel
        # Optional multi-tenant job gateway (repro.core.gateway); its
        # pump runs after every event that can finish a problem.
        self._gateway = gateway
        # problem_id -> blob keys published to the data channel for it.
        self._published: dict[int, set[str]] = {}
        self._m_published = server.obs.meters.counter("net.blob.published")
        self._sweep_stop: threading.Event | None = None
        self._sweep_thread: threading.Thread | None = None

    def _now(self) -> float:
        return time.monotonic()

    def start_lease_sweeper(self, interval: float | None = None) -> None:
        """Reclaim expired leases on a timer (idempotent).

        Defaults to a quarter of the lease timeout, mirroring the
        simulated cluster's periodic sweep.  Metered through the
        existing ``farm.leases.expired`` counter.
        """
        if self._sweep_thread is not None:
            return
        if interval is None:
            interval = max(1.0, self._server.leases.timeout / 4)
        stop = threading.Event()

        def sweep() -> None:
            while not stop.wait(interval):
                with self._lock:
                    self._server.expire_leases(self._now())
                    self._pump_gateway()

        self._sweep_stop = stop
        self._sweep_thread = threading.Thread(
            target=sweep, name="lease-sweeper", daemon=True
        )
        self._sweep_thread.start()

    def stop_lease_sweeper(self) -> None:
        if self._sweep_thread is None:
            return
        self._sweep_stop.set()
        self._sweep_thread.join(timeout=5.0)
        self._sweep_stop = None
        self._sweep_thread = None

    def checkpoint_to(self, path) -> int:
        """Write an atomic v4 checkpoint covering the journal so far.

        Holds the facade lock across dump + LSN capture so the snapshot
        and the LSN it records describe the same quiescent state, then
        rotates and compacts the journal segments the checkpoint
        covers.  Returns the covered LSN.
        """
        from pathlib import Path

        from repro.core.checkpoint import dumps_checkpoint
        from repro.core.journal import compact

        with self._lock:
            writer = self._server.journal
            lsn = writer.last_lsn if writer is not None else 0
            data = dumps_checkpoint(
                self._server, self._now(), journal_lsn=lsn, gateway=self._gateway
            )
            path = Path(path)
            tmp = path.with_suffix(path.suffix + ".tmp")
            tmp.write_bytes(data)
            tmp.replace(path)
            if writer is not None:
                writer.rotate()
                compact(writer.store, lsn)
        return lsn

    def _publish_blobs(self, assignment: Assignment) -> None:
        """Put a unit's shared blobs on the data channel before the
        assignment leaves the server — a donor can never fetch a blob
        that is not yet published.  Called under the facade lock."""
        if self._data_channel is None:
            return
        pid = assignment.problem_id
        published = self._published.setdefault(pid, set())
        for ref in iter_blob_refs(assignment.payload):
            if ref.key in published:
                continue
            data = self._server.get_shared_blob(pid, ref.key)
            self._data_channel.retain(ref.key, data)
            published.add(ref.key)
            self._m_published.inc()

    def _sweep_finished_blobs(self) -> None:
        """Release the data-channel blobs of problems that ended.
        Content-addressed refcounts keep blobs shared by a still-running
        problem alive.  Called under the facade lock."""
        if self._data_channel is None or not self._published:
            return
        for pid in list(self._published):
            if self._server.status(pid) is ProblemStatus.RUNNING:
                continue
            for key in self._published.pop(pid):
                self._data_channel.release(key)

    def register_donor(self, donor_id: str, slots: int = 1) -> None:
        with self._lock:
            self._server.register_donor(donor_id, self._now(), slots=slots)

    def deregister_donor(self, donor_id: str) -> None:
        with self._lock:
            self._server.deregister_donor(donor_id, self._now())

    def request_work(self, donor_id: str) -> Assignment | None:
        with self._lock:
            now = self._now()
            self._server.expire_leases(now)
            assignment = self._server.request_work(donor_id, now)
            if assignment is not None:
                self._publish_blobs(assignment)
            return assignment

    def _pump_gateway(self) -> None:
        """Reconcile finished jobs + start queued ones (under the lock)."""
        if self._gateway is not None:
            self._gateway.pump(self._now())

    def submit_result(self, result: WorkResult) -> bool:
        with self._lock:
            accepted = self._server.submit_result(result, self._now())
            self._pump_gateway()
            self._sweep_finished_blobs()
            return accepted

    def heartbeat(self, donor_id: str) -> None:
        with self._lock:
            self._server.heartbeat(donor_id, self._now())

    def report_failure(
        self, problem_id: int, unit_id: int, donor_id: str, error: str
    ) -> None:
        with self._lock:
            self._server.report_failure(
                problem_id, unit_id, donor_id, error, self._now()
            )
            self._pump_gateway()
            self._sweep_finished_blobs()

    def get_algorithm(self, problem_id: int) -> Algorithm:
        with self._lock:
            return self._server.get_algorithm(problem_id)

    def get_blob(self, problem_id: int, key: str) -> bytes:
        with self._lock:
            return self._server.get_blob(problem_id, key)

    def get_shared_blob(self, problem_id: int, key: str) -> bytes:
        """RMI fallback path for shared blobs (data channel preferred)."""
        with self._lock:
            return self._server.get_shared_blob(problem_id, key)

    def data_address(self) -> tuple[str, int] | None:
        """Where donors fetch shared blobs in bulk (None when not run)."""
        if self._data_channel is None:
            return None
        return self._data_channel.host, self._data_channel.port

    def all_complete(self) -> bool:
        with self._lock:
            return self._server.all_complete()

    def submit(self, problem: Problem) -> int:
        with self._lock:
            return self._server.submit(problem, self._now())

    def status_name(self, problem_id: int) -> str:
        with self._lock:
            return self._server.status(problem_id).value

    def failure_reason(self, problem_id: int) -> str | None:
        with self._lock:
            return self._server.failure_reason(problem_id)

    def progress(self, problem_id: int) -> float:
        with self._lock:
            return self._server.progress(problem_id)

    def final_result(self, problem_id: int) -> Any:
        with self._lock:
            return self._server.final_result(problem_id)

    # -- job gateway (multi-tenant front door) -------------------------
    # RMI-friendly: admission rejections come back as plain dicts with
    # retry_after, not exceptions tunnelled over the wire.

    def submit_job(self, tenant_id: str, problem: Problem) -> dict:
        from repro.core.gateway import AdmissionError

        with self._lock:
            if self._gateway is None:
                return {"error": "server runs no job gateway (--tenants)"}
            # Each remote submitter numbers problems from its own
            # process-local counter, so independent repro-jobs runs all
            # ship "problem 1" — re-key at the admission boundary.
            problem.problem_id = self._gateway.fresh_problem_id()
            try:
                job_id = self._gateway.submit_job(
                    tenant_id, problem, self._now()
                )
            except AdmissionError as exc:
                return {
                    "accepted": False,
                    "retry_after": exc.retry_after,
                    "reason": str(exc),
                }
            except (KeyError, ValueError) as exc:
                return {"error": str(exc)}
            return {"accepted": True, "job_id": job_id}

    def job_status(self, job_id: int) -> dict:
        with self._lock:
            if self._gateway is None:
                return {"error": "server runs no job gateway (--tenants)"}
            try:
                return self._gateway.job_status(job_id)
            except KeyError as exc:
                return {"error": str(exc)}

    def cancel_job(self, job_id: int) -> dict:
        with self._lock:
            if self._gateway is None:
                return {"error": "server runs no job gateway (--tenants)"}
            try:
                cancelled = self._gateway.cancel_job(job_id, self._now())
            except KeyError as exc:
                return {"error": str(exc)}
            self._sweep_finished_blobs()
            return {"cancelled": cancelled}

    def job_result(self, job_id: int) -> Any:
        with self._lock:
            if self._gateway is None:
                raise RuntimeError("server runs no job gateway (--tenants)")
            return self._gateway.job_result(job_id)

    def gateway_snapshot(self) -> dict:
        with self._lock:
            if self._gateway is None:
                return {"error": "server runs no job gateway (--tenants)"}
            return self._gateway.snapshot()

    def status_report(self) -> str:
        """Operator snapshot (also callable remotely over RMI)."""
        from repro.core.status import render_status

        with self._lock:
            return render_status(self._server, self._now())

    def status_json(self) -> dict:
        """Mid-run JSON snapshot: farm status + streaming meters.

        This is what ``repro-status`` calls over RMI against a live
        deployment.
        """
        from repro.core.status import snapshot_dict

        with self._lock:
            return snapshot_dict(self._server, self._now(), gateway=self._gateway)

    def metrics_snapshot(self) -> dict:
        """Just the streaming meters (cheap; no per-problem scan)."""
        return self._server.obs.meters.snapshot()


class ThreadCluster:
    """Donors as threads against an in-process server.

    With ``prefetch=True`` every donor runs the pipelined double-buffer
    loop; pass a matching ``pipeline``
    (:meth:`~repro.core.server.PipelineConfig.pipelined` when omitted)
    so the server leases each donor the extra in-flight unit.

    With ``pool_workers > 1`` every donor drives a multi-core
    :class:`~repro.core.client.WorkerPool`; pass ``worker_pool`` to
    share one pre-spawned pool across donors and runs (worker processes
    are expensive to start, and the pool is protocol-free so sharing is
    safe).
    """

    def __init__(
        self,
        workers: int = 4,
        policy: GranularityPolicy | None = None,
        lease_timeout: float = 30.0,
        idle_sleep: float = 0.002,
        prefetch: bool = False,
        pipeline: PipelineConfig | None = None,
        pool_workers: int = 1,
        worker_pool: Any = None,
    ):
        if prefetch and pipeline is None:
            pipeline = PipelineConfig.pipelined()
        self.server = TaskFarmServer(
            policy=policy, lease_timeout=lease_timeout, pipeline=pipeline
        )
        self._facade_lock = threading.RLock()
        self.workers = workers
        self.idle_sleep = idle_sleep
        self.prefetch = prefetch
        self.pool_workers = pool_workers
        self.worker_pool = worker_pool
        self._threads: list[threading.Thread] = []

    def submit(self, problem: Problem) -> int:
        with self._facade_lock:
            return self.server.submit(problem, time.monotonic())

    def run(self) -> None:
        """Run donors until every submitted problem completes."""
        port = _LockedPort(self.server, self._facade_lock)
        clients = [
            DonorClient(
                f"thread-{i}",
                port,
                idle_sleep=self.idle_sleep,
                prefetch=self.prefetch,
                workers=self.pool_workers,
                pool=self.worker_pool,
            )
            for i in range(self.workers)
        ]
        self._threads = [
            threading.Thread(target=client.run, daemon=True) for client in clients
        ]
        for t in self._threads:
            t.start()
        for t in self._threads:
            t.join()

    def final_result(self, problem_id: int) -> Any:
        return self.server.final_result(problem_id)


class _LockedPort(InProcessServerPort):
    """An :class:`InProcessServerPort` made thread-safe with one lock."""

    def __init__(self, server: TaskFarmServer, lock: threading.RLock):
        super().__init__(server)
        self._lock = lock

    def register_donor(self, donor_id: str, slots: int = 1) -> None:
        with self._lock:
            super().register_donor(donor_id, slots)

    def deregister_donor(self, donor_id: str) -> None:
        with self._lock:
            super().deregister_donor(donor_id)

    def request_work(self, donor_id: str):
        with self._lock:
            return super().request_work(donor_id)

    def submit_result(self, result: WorkResult) -> bool:
        with self._lock:
            return super().submit_result(result)

    def report_failure(
        self, problem_id: int, unit_id: int, donor_id: str, error: str
    ) -> None:
        with self._lock:
            super().report_failure(problem_id, unit_id, donor_id, error)

    def heartbeat(self, donor_id: str) -> None:
        with self._lock:
            super().heartbeat(donor_id)

    def get_algorithm(self, problem_id: int) -> Algorithm:
        with self._lock:
            return super().get_algorithm(problem_id)

    def get_shared_blob(self, problem_id: int, key: str) -> bytes:
        with self._lock:
            return super().get_shared_blob(problem_id, key)

    def all_complete(self) -> bool:
        with self._lock:
            return super().all_complete()


def make_blob_fetch(proxy):
    """Cache-miss transport for a live donor.

    Prefers the bulk data channel ("ordinary sockets ... more efficient
    than RMI"); a :class:`ChecksumError` propagates so the donor cache
    can refetch, while an unreachable or blob-less channel falls back
    to the RMI ``get_shared_blob`` path.
    """
    state: dict[str, Any] = {}

    def fetch(problem_id: int, ref: BlobRef) -> bytes:
        if "addr" not in state:
            try:
                state["addr"] = proxy.data_address()
            except (RMIError, OSError, AttributeError):
                state["addr"] = None
        addr = state["addr"]
        if addr is not None:
            try:
                return fetch_data(addr[0], addr[1], ref.key)
            except ChecksumError:
                raise
            except (RMIError, OSError):
                pass
        return proxy.get_shared_blob(problem_id, ref.key)

    return fetch


def _worker_main(
    host: str,
    port: int,
    donor_id: str,
    idle_sleep: float,
    prefetch: bool = False,
    pool_workers: int = 1,
) -> None:
    """Donor process entry point: the real client against RMI."""
    proxy = connect(host, port, "taskfarm")
    try:
        client = DonorClient(
            donor_id,
            proxy,
            idle_sleep=idle_sleep,
            blob_fetch=make_blob_fetch(proxy),
            prefetch=prefetch,
            workers=pool_workers,
        )
        client.run()
    finally:
        proxy.close()


class LocalCluster:
    """Server behind RMI + donor OS processes (the full live path).

    Usage::

        with LocalCluster(workers=4) as cluster:
            pid = cluster.submit(problem)
            cluster.start()
            result = cluster.wait(pid, timeout=60)
    """

    def __init__(
        self,
        workers: int = 2,
        policy: GranularityPolicy | None = None,
        lease_timeout: float = 30.0,
        idle_sleep: float = 0.05,
        prefetch: bool = False,
        pipeline: PipelineConfig | None = None,
        pool_workers: int = 1,
    ):
        if prefetch and pipeline is None:
            pipeline = PipelineConfig.pipelined()
        self.server = TaskFarmServer(
            policy=policy, lease_timeout=lease_timeout, pipeline=pipeline
        )
        self.prefetch = prefetch
        self.pool_workers = pool_workers
        self.data_channel = DataChannelServer(meters=self.server.obs.meters)
        self.facade = ServerFacade(self.server, data_channel=self.data_channel)
        # One observability bundle across layers: RMI dispatch meters and
        # farm counters land in the same registry the status CLI reads.
        self.rmi = RMIServer(obs=self.server.obs)
        self.rmi.bind("taskfarm", self.facade)
        self.workers = workers
        self.idle_sleep = idle_sleep
        self._processes: list = []

    @property
    def address(self) -> tuple[str, int]:
        return self.rmi.host, self.rmi.port

    def submit(self, problem: Problem) -> int:
        return self.facade.submit(problem)

    def start(self) -> None:
        """Launch the donor processes."""
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        for i in range(self.workers):
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    self.rmi.host,
                    self.rmi.port,
                    f"proc-{i}",
                    self.idle_sleep,
                    self.prefetch,
                    self.pool_workers,
                ),
                # Daemonic processes may not have children: a pooled
                # donor spawns its own worker processes.
                daemon=self.pool_workers <= 1,
            )
            proc.start()
            self._processes.append(proc)

    def wait(self, problem_id: int, timeout: float = 120.0) -> Any:
        """Block until *problem_id* completes; returns its final result.

        Raises ``RuntimeError`` if the problem fails (poison unit) and
        ``TimeoutError`` on the deadline.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = self.facade.status_name(problem_id)
            if status == ProblemStatus.COMPLETE.value:
                return self.facade.final_result(problem_id)
            if status == ProblemStatus.FAILED.value:
                raise RuntimeError(
                    f"problem {problem_id} failed: "
                    f"{self.facade.failure_reason(problem_id)}"
                )
            time.sleep(0.02)
        raise TimeoutError(f"problem {problem_id} did not complete in {timeout}s")

    def shutdown(self) -> None:
        for proc in self._processes:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._processes.clear()
        self.rmi.close()
        self.data_channel.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
