#!/usr/bin/env python
"""The full deployment story on one machine.

The paper's topology: one server; donor clients on lab PCs; users who
"do not need any knowledge of the topology or workings of the system in
order to submit problems and get their processed results back".

This example plays all three roles with real TCP between them:

1. starts a task-farm server on a localhost port (``repro-server``'s
   internals);
2. launches donor OS processes against it (``repro-donor``'s
   internals);
3. acts as a *user*: connects a ``RemoteSubmitter``, ships a DSEARCH
   problem, watches progress, and prints the farm's operator status
   mid-run.

Run:  python examples/deployment.py
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.apps.dsearch import DSearchConfig
from repro.apps.dsearch.driver import build_problem
from repro.bio.seq import DNA
from repro.bio.seq.generate import random_sequence, seeded_database
from repro.cluster.local import RemoteSubmitter, ServerFacade
from repro.cluster.local.cluster import _worker_main
from repro.core.scheduler import AdaptiveGranularity
from repro.core.server import TaskFarmServer
from repro.rmi import RMIServer


def main() -> None:
    # --- role 1: the server machine -----------------------------------
    server = TaskFarmServer(
        policy=AdaptiveGranularity(target_seconds=0.5, probe_items=2),
        lease_timeout=30.0,
    )
    rmi = RMIServer()
    rmi.bind("taskfarm", ServerFacade(server))
    print(f"[server] task farm listening on {rmi.host}:{rmi.port}")

    # --- role 3 first: the user submits a problem ----------------------
    # (Donors exit when the farm has nothing left to do, so for a short
    # demo the job goes in before the donors come up; a production
    # service would keep donors resident.)
    rng = np.random.default_rng(11)
    query = random_sequence("gene-of-interest", 90, DNA, rng)
    database, homologs = seeded_database(query, 200, 2, seed=12)
    problem = build_problem(database, [query], DSearchConfig(top_hits=5))

    with RemoteSubmitter(rmi.host, rmi.port) as farm:
        pid = farm.submit(problem)
        print(f"[user]   submitted problem {pid}: search {len(database)} sequences")

        # --- role 2: three donor lab PCs (separate OS processes) -------
        ctx = mp.get_context("fork")
        donors = [
            ctx.Process(
                target=_worker_main,
                args=(rmi.host, rmi.port, f"lab-pc-{i:02d}", 0.05),
                daemon=True,
            )
            for i in range(3)
        ]
        for proc in donors:
            proc.start()
        print(f"[donors] {len(donors)} donor processes started")

        milestones = {0.25, 0.5, 0.75}

        def on_progress(fraction: float) -> None:
            due = {m for m in milestones if fraction >= m}
            for m in sorted(due):
                print(f"[user]   progress {m:.0%}")
                milestones.discard(m)

        report = farm.wait(pid, timeout=300.0, poll_interval=0.05,
                           on_progress=on_progress)
        print("\n[server] operator status after completion:")
        print(farm.status_report())

    print("\n[user]   top hits:")
    for rank, hit in enumerate(report.hits["gene-of-interest"], start=1):
        marker = "  <-- planted homolog" if hit.subject_id in homologs else ""
        print(f"         {rank}. {hit.subject_id:<14} score {hit.score:.0f}{marker}")

    for proc in donors:
        proc.join(timeout=10.0)
        if proc.is_alive():
            proc.terminate()
    rmi.close()
    print("[server] shut down")


if __name__ == "__main__":
    main()
