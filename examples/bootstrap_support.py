#!/usr/bin/env python
"""DBOOT example: distributed bootstrap support values.

The paper's future work promises "more distributed bioinformatics
applications"; the bootstrap is the natural next Problem for the task
farm.  We simulate data on a known tree whose clades have very
different signal strengths (one short, weakly supported internal edge;
several long, obvious ones), distribute 200 replicates across donor
threads, and print per-clade support — the weak edge should visibly
lag the strong ones.

Run:  python examples/bootstrap_support.py
"""

from __future__ import annotations

from repro.apps.dboot import run_dboot
from repro.bio.phylo import parse_newick
from repro.bio.phylo.models import JC69
from repro.bio.phylo.simulate import simulate_alignment


def main() -> None:
    # ((a,b) strong, ((c,d) strong, (e,f) WEAK join)) — the (cd|ef)
    # grouping hangs on a very short internal branch.
    true_tree = parse_newick(
        "((a:0.08,b:0.08):0.25,"
        "((c:0.08,d:0.08):0.22,(e:0.08,f:0.08):0.22):0.004,"
        "g:0.3);"
    )
    alignment = simulate_alignment(true_tree, JC69(), sites=600, seed=99)
    print(
        f"simulated {alignment.n_taxa} taxa x {alignment.n_sites} sites on a tree "
        "with one deliberately weak internal edge"
    )

    report = run_dboot(alignment, replicates=200, seed=1, workers=4)

    print(f"\nreference tree: {report.reference_newick}")
    print(f"\nbootstrap support over {report.replicates} replicates:")
    print(f"{'support':>8}  clade")
    for entry in sorted(report.supports, key=lambda s: -s.support):
        members = ",".join(sorted(entry.split))
        flag = "   <-- weak edge" if entry.support < 0.7 else ""
        print(f"{entry.support:>7.0%}  {{{members}}}{flag}")

    strong = report.strongly_supported(0.7)
    print(
        f"\n{len(strong)} of {len(report.supports)} internal edges are "
        "strongly supported (>= 70%)"
    )


if __name__ == "__main__":
    main()
