#!/usr/bin/env python
"""Quickstart: the paper's programming model in one file.

"The user is required to extend two classes to create a Problem to run
on the system" — here we estimate π by Monte Carlo:

* ``PiDataManager`` (server side) partitions the sample budget into
  work units and accumulates the hit counts.
* ``PiAlgorithm`` (client side) does the actual sampling.

The same Problem then runs on two backends: donor threads in this
process, and real donor OS processes talking RMI over localhost — the
live topology of the paper's deployment.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster.local import LocalCluster, ThreadCluster
from repro.core.problem import Algorithm, DataManager, Problem
from repro.core.scheduler import AdaptiveGranularity
from repro.core.workunit import UnitPayload, WorkResult


class PiDataManager(DataManager):
    """Server side: split the sample budget, sum the hits."""

    def __init__(self, total_samples: int, samples_per_item: int = 10_000):
        self.total_samples = total_samples
        self.samples_per_item = samples_per_item
        self._issued_items = 0
        self._done_items = 0
        self._hits = 0
        self._samples = 0

    def total_items(self) -> int:
        return -(-self.total_samples // self.samples_per_item)

    def next_unit(self, max_items: int) -> UnitPayload | None:
        remaining = self.total_items() - self._issued_items
        if remaining <= 0:
            return None
        take = min(max_items, remaining)
        # Seed each unit by its offset so results are reproducible
        # whichever donor computes them.
        payload = (self._issued_items, take, self.samples_per_item)
        self._issued_items += take
        return UnitPayload(payload=payload, items=take, input_bytes=24)

    def handle_result(self, result: WorkResult) -> None:
        hits, samples = result.value
        self._hits += hits
        self._samples += samples
        self._done_items += result.items

    def is_complete(self) -> bool:
        return self._done_items >= self.total_items()

    def final_result(self) -> float:
        return 4.0 * self._hits / self._samples


class PiAlgorithm(Algorithm):
    """Client side: sample points in the unit square."""

    def compute(self, payload) -> tuple[int, int]:
        offset, items, per_item = payload
        rng = np.random.default_rng(1234 + offset)
        samples = items * per_item
        xy = rng.random((samples, 2))
        hits = int((np.square(xy).sum(axis=1) <= 1.0).sum())
        return hits, samples

    def cost(self, payload) -> float:
        _offset, items, per_item = payload
        return float(items * per_item)


def main() -> None:
    print("== Thread cluster (donors in this process) ==")
    cluster = ThreadCluster(workers=4, policy=AdaptiveGranularity(target_seconds=0.2))
    pid = cluster.submit(
        Problem("pi", PiDataManager(2_000_000), PiAlgorithm())
    )
    cluster.run()
    print(f"   pi ~= {cluster.final_result(pid):.4f}")

    print("== Local cluster (donor processes over RMI) ==")
    with LocalCluster(workers=2, policy=AdaptiveGranularity(target_seconds=0.2)) as lc:
        pid = lc.submit(Problem("pi-rmi", PiDataManager(1_000_000), PiAlgorithm()))
        lc.start()
        print(f"   pi ~= {lc.wait(pid, timeout=120):.4f}")


if __name__ == "__main__":
    main()
