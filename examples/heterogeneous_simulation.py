#!/usr/bin/env python
"""Simulated deployment: adaptive granularity on a heterogeneous pool.

Recreates the paper's deployment conditions in the discrete-event
simulator — a pool of donor PCs spanning PII-to-PIV speeds, each only
semi-idle, behind one 100 Mbit/s server link — and compares the paper's
adaptive granularity control against a fixed unit size on the same
workload.  Also injects donor churn to show work units being requeued
and recomputed with no loss of results.

Run:  python examples/heterogeneous_simulation.py
"""

from __future__ import annotations

from repro.cluster.sim import SimCluster, heterogeneous_pool
from repro.cluster.sim.machines import with_churn
from repro.cluster.sim.trace import WorkloadTrace, trace_problem
from repro.core.scheduler import AdaptiveGranularity, FixedGranularity


def run(policy, machines, label: str, seed: int = 5) -> float:
    cluster = SimCluster(
        machines, policy=policy, lease_timeout=600.0, seed=seed, execute=False
    )
    pid = cluster.submit(
        trace_problem(WorkloadTrace.single_stage([30.0] * 2000, name=label))
    )
    report = cluster.run()
    assert report.completed
    makespan = report.makespans[pid]
    print(
        f"  {label:<22} makespan {makespan:>9.0f} s   "
        f"mean donor utilisation {report.mean_utilization:5.1%}"
    )
    return makespan


def main() -> None:
    pool = heterogeneous_pool(
        32, seed=1, speed_range=(0.25, 2.0), availability_range=(0.5, 1.0)
    )
    speeds = sorted(m.speed for m in pool)
    print(
        f"pool: 32 donors, speed {speeds[0]:.2f}x..{speeds[-1]:.2f}x, semi-idle\n"
    )

    print("fixed vs adaptive granularity (same workload):")
    fixed = run(FixedGranularity(63), pool, "fixed 63-item units")
    adaptive = run(
        AdaptiveGranularity(target_seconds=120.0, probe_items=4),
        pool,
        "adaptive units",
    )
    print(f"  -> adaptive is {fixed / adaptive:.2f}x faster on this pool\n")

    print("with donor churn (machines leave and return):")
    churny = with_churn(pool, horizon=1e6, mean_uptime=2000.0, mean_downtime=500.0, seed=9)
    cluster = SimCluster(
        churny,
        policy=AdaptiveGranularity(target_seconds=120.0, probe_items=4),
        lease_timeout=300.0,
        seed=5,
        execute=False,
    )
    pid = cluster.submit(trace_problem(WorkloadTrace.single_stage([30.0] * 2000)))
    report = cluster.run()
    requeued = len(report.log.of_kind("unit.requeued"))
    print(
        f"  completed: {report.completed}, makespan {report.makespans[pid]:.0f} s, "
        f"{requeued} units requeued after donor departures, "
        f"{report.results[pid]['items']} / 2000 items accounted for"
    )


if __name__ == "__main__":
    main()
