#!/usr/bin/env python
"""DPRml example: distributed ML phylogeny reconstruction.

Simulates sequence evolution along a known 12-taxon tree under HKY85,
then reconstructs the phylogeny with DPRml (stepwise insertion, all
likelihood work on donor threads) — and, as biologists do with
stochastic searches, runs three instances with different addition
orders and keeps the best.  Finally compares each reconstruction
against the true tree with Robinson-Foulds distance.

Run:  python examples/dprml_phylogeny.py
"""

from __future__ import annotations

from repro.apps.dprml import DPRmlConfig, run_many_dprml
from repro.bio.phylo import parse_newick, rf_distance
from repro.bio.phylo.models import HKY85
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment


def main() -> None:
    true_tree = random_yule_tree(12, seed=42, mean_branch=0.12)
    frequencies = (0.3, 0.2, 0.2, 0.3)
    model = HKY85(2.5, frequencies)
    alignment = simulate_alignment(true_tree, model, sites=600, seed=43)
    print(
        f"simulated: {alignment.n_taxa} taxa x {alignment.n_sites} sites "
        f"({alignment.n_patterns} unique patterns) under {model.name}"
    )

    config = DPRmlConfig(model="hky85", kappa=2.5, freqs=frequencies)
    reports = run_many_dprml(alignment, instances=3, config=config, workers=4)

    print(f"\n{'instance':>8}  {'logL':>12}  {'RF vs truth':>12}  {'evals':>6}")
    best = max(reports, key=lambda r: r.log_likelihood)
    for i, report in enumerate(reports):
        inferred = parse_newick(report.newick)
        rf = rf_distance(true_tree, inferred)
        marker = "  <-- best" if report is best else ""
        print(
            f"{i:>8}  {report.log_likelihood:>12.2f}  {rf:>12}  "
            f"{report.evaluations:>6}{marker}"
        )

    print("\nbest tree (newick):")
    print(best.newick)

    from repro.apps.dprml.driver import consensus_of
    from repro.bio.phylo import ascii_tree

    print("\nbest tree:")
    print(ascii_tree(parse_newick(best.newick), width=64))

    consensus, splits = consensus_of(reports)
    print(
        f"\nmajority-rule consensus of the {len(reports)} instances "
        f"({len(splits)} clades above 50%):"
    )
    print(ascii_tree(consensus, width=64, use_lengths=False))


if __name__ == "__main__":
    main()
