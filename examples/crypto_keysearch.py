#!/usr/bin/env python
"""Cryptography on the task farm: a distributed key search.

The paper notes the system also processed "cryptography applications".
The classic cycle-scavenging cryptography workload (distributed.net's
bread and butter) is exhaustive key search: the keyspace partitions
perfectly into work units.  Here donors crack a toy 24-bit cipher
(XOR with a keyed keystream) by scanning key ranges for the key that
decrypts a known plaintext/ciphertext pair — small enough to finish in
seconds, structured exactly like the real thing.

Run:  python examples/crypto_keysearch.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster.local import ThreadCluster
from repro.core.problem import Algorithm, DataManager, Problem
from repro.core.scheduler import AdaptiveGranularity
from repro.core.workunit import UnitPayload, WorkResult

KEY_BITS = 24
KEYSPACE = 1 << KEY_BITS


def keystream(key: int, length: int) -> np.ndarray:
    """A toy keyed generator (xorshift-seeded byte stream)."""
    state = np.uint64(key * 2654435761 % (1 << 32) or 1)
    out = np.empty(length, dtype=np.uint8)
    for i in range(length):
        state ^= (state << np.uint64(13)) & np.uint64(0xFFFFFFFFFFFFFFFF)
        state ^= state >> np.uint64(7)
        state ^= (state << np.uint64(17)) & np.uint64(0xFFFFFFFFFFFFFFFF)
        out[i] = int(state) & 0xFF
    return out


def encrypt(key: int, plaintext: bytes) -> bytes:
    stream = keystream(key, len(plaintext))
    return bytes(np.frombuffer(plaintext, dtype=np.uint8) ^ stream)


class KeySearchDataManager(DataManager):
    """Server side: deal out key ranges, stop as soon as one donor wins.

    Early termination is the interesting wrinkle: once the key is
    found, ``is_complete`` flips immediately and the server cancels the
    rest of the search — no need to scan the whole keyspace.
    """

    def __init__(self, plaintext: bytes, ciphertext: bytes, keys_per_item: int = 4096):
        self.plaintext = plaintext
        self.ciphertext = ciphertext
        self.keys_per_item = keys_per_item
        self._next_key = 0
        self._found: int | None = None
        self._scanned = 0

    def total_items(self) -> int:
        return KEYSPACE // self.keys_per_item

    def next_unit(self, max_items: int) -> UnitPayload | None:
        if self._found is not None or self._next_key >= KEYSPACE:
            return None
        span = min(max_items * self.keys_per_item, KEYSPACE - self._next_key)
        lo = self._next_key
        self._next_key += span
        return UnitPayload(
            payload=(lo, lo + span, self.plaintext, self.ciphertext),
            items=max(1, span // self.keys_per_item),
            input_bytes=len(self.plaintext) * 2 + 16,
        )

    def handle_result(self, result: WorkResult) -> None:
        found, scanned = result.value
        self._scanned += scanned
        if found is not None and self._found is None:
            self._found = found

    def is_complete(self) -> bool:
        return self._found is not None or (
            self._next_key >= KEYSPACE and self._scanned >= KEYSPACE
        )

    def final_result(self) -> tuple[int | None, int]:
        return self._found, self._scanned


class KeySearchAlgorithm(Algorithm):
    """Donor side: try every key in the range."""

    def compute(self, payload):
        lo, hi, plaintext, ciphertext = payload
        probe = plaintext[:4]
        target = ciphertext[:4]
        for key in range(lo, hi):
            if encrypt(key, probe) == target:  # cheap 4-byte prefilter
                if encrypt(key, plaintext) == ciphertext:
                    return key, hi - lo
        return None, hi - lo

    def cost(self, payload):
        lo, hi, _p, _c = payload
        return float(hi - lo)


def main() -> None:
    rng = np.random.default_rng(1789)
    secret_key = int(rng.integers(0, KEYSPACE // 8))  # early-ish for demo speed
    plaintext = b"ATTACK AT DAWN -- IPDPS 2005"
    ciphertext = encrypt(secret_key, plaintext)
    print(f"keyspace: 2^{KEY_BITS} keys; ciphertext: {ciphertext.hex()[:32]}...")

    cluster = ThreadCluster(
        workers=4, policy=AdaptiveGranularity(target_seconds=0.5, probe_items=1)
    )
    pid = cluster.submit(
        Problem(
            "keysearch",
            KeySearchDataManager(plaintext, ciphertext),
            KeySearchAlgorithm(),
        )
    )
    cluster.run()
    found, scanned = cluster.final_result(pid)
    print(f"scanned ~{scanned:,} keys across 4 donors")
    assert found == secret_key
    print(f"key found: 0x{found:06x}")
    print(f"decrypted: {encrypt(found, ciphertext).decode()!r}")


if __name__ == "__main__":
    main()
