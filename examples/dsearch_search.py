#!/usr/bin/env python
"""DSEARCH example: a sensitive distributed database search.

Builds a synthetic protein-sized DNA database with three planted
homologs of the query (diverged copies), writes the paper's input files
(FASTA database, FASTA queries, configuration file), runs the search on
a thread cluster with Smith-Waterman, and prints the ranked hits — the
planted homologs should dominate the top of the list.

Run:  python examples/dsearch_search.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.apps.dsearch import DSearchConfig, run_dsearch
from repro.bio.align import dna_scheme, local_align
from repro.bio.seq import DNA, read_fasta, write_fasta
from repro.bio.seq.generate import random_sequence, seeded_database


def main() -> None:
    rng = np.random.default_rng(2005)
    query = random_sequence("myquery", 120, DNA, rng)
    database, homolog_ids = seeded_database(
        query, decoy_count=120, homolog_count=3, seed=7, substitution_rate=0.12
    )
    print(f"database: {len(database)} sequences, homologs planted: {homolog_ids}")

    # The paper's four inputs: database FASTA, query FASTA, scoring
    # scheme and configuration file.
    workdir = Path(tempfile.mkdtemp(prefix="dsearch-"))
    write_fasta(workdir / "database.fasta", database)
    write_fasta(workdir / "queries.fasta", [query])
    (workdir / "dsearch.conf").write_text(
        "algorithm = sw\n"
        "scoring = dna\n"
        "match = 5\n"
        "mismatch = -4\n"
        "gap_open = -10\n"
        "gap_extend = -1\n"
        "top_hits = 8\n"
    )
    config = DSearchConfig.from_path(workdir / "dsearch.conf")
    database = read_fasta(workdir / "database.fasta", DNA)
    queries = read_fasta(workdir / "queries.fasta", DNA)

    report = run_dsearch(database, queries, config, workers=4)

    print(f"\ntop hits for {query.seq_id!r}:")
    print(f"{'rank':>4}  {'subject':<14}{'score':>8}  {'len':>5}")
    for rank, hit in enumerate(report.hits[query.seq_id], start=1):
        marker = "  <-- planted homolog" if hit.subject_id in homolog_ids else ""
        print(
            f"{rank:>4}  {hit.subject_id:<14}{hit.score:>8.1f}  "
            f"{hit.subject_length:>5}{marker}"
        )

    # Show the actual alignment of the best hit (full-traceback path).
    best = report.hits[query.seq_id][0]
    subject = next(s for s in database if s.seq_id == best.subject_id)
    scheme = config.scheme()
    print("\nbest local alignment:")
    print(local_align(query, subject, scheme).pretty(width=60))


if __name__ == "__main__":
    main()
